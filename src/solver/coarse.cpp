#include "solver/coarse.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace tsem {

XxtCoarse::XxtCoarse(const CsrMatrix& a, const std::vector<double>& x,
                     const std::vector<double>& y,
                     const std::vector<double>& z, int nlevels) {
  const auto nd = nested_dissection(a, x, y, z, nlevels);
  solver_ = std::make_unique<XxtSolver>(a, nd);
}

XxtCoarse::XxtCoarse(std::unique_ptr<XxtSolver> solver)
    : solver_(std::move(solver)) {
  TSEM_REQUIRE(solver_ != nullptr);
}

void XxtCoarse::solve(const double* b, double* x) const {
  solver_->solve(b, x);
}

namespace {

int matrix_bandwidth(const CsrMatrix& a) {
  int kd = 0;
  const auto& rp = a.row_ptr();
  const auto& col = a.col();
  for (int r = 0; r < a.n(); ++r)
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k)
      kd = std::max(kd, std::abs(r - col[k]));
  return kd;
}

std::vector<double> band_storage(const CsrMatrix& a, int kd) {
  const int n = a.n();
  std::vector<double> band(static_cast<std::size_t>(n) * (kd + 1), 0.0);
  const auto& rp = a.row_ptr();
  const auto& col = a.col();
  const auto& val = a.val();
  for (int r = 0; r < n; ++r)
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k)
      if (col[k] <= r) band[static_cast<std::size_t>(r) * (kd + 1) +
                            (r - col[k])] = val[k];
  return band;
}

}  // namespace

RedundantLuCoarse::RedundantLuCoarse(const CsrMatrix& a) : n_(a.n()) {
  const int kd = matrix_bandwidth(a);
  TSEM_REQUIRE(chol_.factor(band_storage(a, kd), n_, kd));
}

void RedundantLuCoarse::solve(const double* b, double* x) const {
  std::copy(b, b + n_, x);
  chol_.solve(x);
}

DistributedInvCoarse::DistributedInvCoarse(const CsrMatrix& a) : n_(a.n()) {
  TSEM_REQUIRE(n_ <= 8192);  // O(n^2 bw) construction
  const int kd = matrix_bandwidth(a);
  BandedCholesky chol;
  TSEM_REQUIRE(chol.factor(band_storage(a, kd), n_, kd));
  inv_.assign(static_cast<std::size_t>(n_) * n_, 0.0);
  std::vector<double> col(n_);
  for (int j = 0; j < n_; ++j) {
    std::fill(col.begin(), col.end(), 0.0);
    col[j] = 1.0;
    chol.solve(col.data());
    for (int i = 0; i < n_; ++i) inv_[static_cast<std::size_t>(i) * n_ + j] =
        col[i];
  }
}

void DistributedInvCoarse::solve(const double* b, double* x) const {
  for (int i = 0; i < n_; ++i) {
    double s = 0.0;
    const double* row = inv_.data() + static_cast<std::size_t>(i) * n_;
    for (int j = 0; j < n_; ++j) s += row[j] * b[j];
    x[i] = s;
  }
}

CsrMatrix pin_dof(const CsrMatrix& a, int dof) {
  std::vector<Triplet> trip;
  const auto& rp = a.row_ptr();
  const auto& col = a.col();
  const auto& val = a.val();
  for (int r = 0; r < a.n(); ++r)
    for (std::int32_t k = rp[r]; k < rp[r + 1]; ++k) {
      if (r == dof || col[k] == dof) continue;
      trip.push_back({r, col[k], val[k]});
    }
  trip.push_back({static_cast<std::int32_t>(dof),
                  static_cast<std::int32_t>(dof), 1.0});
  return CsrMatrix(a.n(), std::move(trip));
}

}  // namespace tsem
