#include "solver/projection.hpp"

#include <cmath>

#include "common/check.hpp"
#include "tensor/linalg.hpp"

namespace tsem {

SolutionProjection::SolutionProjection(std::size_t n, int lmax)
    : n_(n), lmax_(lmax) {
  TSEM_REQUIRE(lmax >= 1);
  // Outer arrays never exceed these bounds, so reserving once keeps
  // push_back / clear from ever reallocating the vector-of-vectors.
  q_.reserve(lmax_);
  w_.reserve(lmax_);
  pool_.reserve(2 * static_cast<std::size_t>(lmax_));
}

void SolutionProjection::clear() {
  for (auto& v : q_) pool_.push_back(std::move(v));
  for (auto& v : w_) pool_.push_back(std::move(v));
  q_.clear();
  w_.clear();
}

std::vector<double> SolutionProjection::take() {
  if (!pool_.empty()) {
    std::vector<double> v = std::move(pool_.back());
    pool_.pop_back();
    return v;
  }
  return std::vector<double>(n_);
}

double SolutionProjection::project(const double* g, double* p0,
                                   double* r) const {
  std::fill(p0, p0 + n_, 0.0);
  std::copy(g, g + n_, r);
  for (std::size_t i = 0; i < q_.size(); ++i) {
    const double c = dot(q_[i].data(), g, n_);
    axpy(c, q_[i].data(), p0, n_);
    axpy(-c, w_[i].data(), r, n_);
  }
  return norm2(r, n_);
}

void SolutionProjection::push_current() {
  // Two-pass Gram-Schmidt in the E inner product for numerical stability,
  // done in place on the delta_/image_ candidates.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < q_.size(); ++i) {
      const double c = dot(w_[i].data(), delta_.data(), n_);
      axpy(-c, q_[i].data(), delta_.data(), n_);
      axpy(-c, w_[i].data(), image_.data(), n_);
    }
  }
  const double nrm2 = dot(delta_.data(), image_.data(), n_);
  if (!(nrm2 > 1e-28)) return;  // linearly dependent; drop
  const double inv = 1.0 / std::sqrt(nrm2);
  std::vector<double> q = take();
  std::vector<double> w = take();
  for (std::size_t k = 0; k < n_; ++k) {
    q[k] = delta_[k] * inv;
    w[k] = image_[k] * inv;
  }
  q_.push_back(std::move(q));
  w_.push_back(std::move(w));
}

void SolutionProjection::restore_basis(std::vector<std::vector<double>> q,
                                       std::vector<std::vector<double>> w) {
  TSEM_REQUIRE(q.size() == w.size());
  if (static_cast<int>(q.size()) > lmax_) {
    q.resize(lmax_);
    w.resize(lmax_);
  }
  for (std::size_t i = 0; i < q.size(); ++i)
    TSEM_REQUIRE(q[i].size() == n_ && w[i].size() == n_);
  clear();  // recycle the old basis buffers before adopting the new ones
  q_ = std::move(q);
  w_ = std::move(w);
  // The move-assign discarded the ctor's reservation; restore it so the
  // steady-state push_back path stays reallocation-free (rare path, the
  // one-time cost here is fine).
  q_.reserve(lmax_);
  w_.reserve(lmax_);
}

void SolutionProjection::update(const double* p, const double* p0,
                                const Apply& apply) {
  if (delta_.size() < n_) {
    delta_.resize(n_);
    image_.resize(n_);
  }
  for (std::size_t k = 0; k < n_; ++k) delta_[k] = p[k] - p0[k];

  if (static_cast<int>(q_.size()) >= lmax_) {
    // Window full: restart the basis from the current full solution.
    clear();
    std::copy(p, p + n_, delta_.data());
  }
  apply(delta_.data(), image_.data());
  push_current();
}

}  // namespace tsem
