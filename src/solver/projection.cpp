#include "solver/projection.hpp"

#include <cmath>

#include "common/check.hpp"
#include "tensor/linalg.hpp"

namespace tsem {

SolutionProjection::SolutionProjection(std::size_t n, int lmax)
    : n_(n), lmax_(lmax) {
  TSEM_REQUIRE(lmax >= 1);
}

double SolutionProjection::project(const double* g, double* p0,
                                   double* r) const {
  std::fill(p0, p0 + n_, 0.0);
  std::copy(g, g + n_, r);
  for (std::size_t i = 0; i < q_.size(); ++i) {
    const double c = dot(q_[i].data(), g, n_);
    axpy(c, q_[i].data(), p0, n_);
    axpy(-c, w_[i].data(), r, n_);
  }
  return norm2(r, n_);
}

void SolutionProjection::push(std::vector<double> q, std::vector<double> w) {
  // Two-pass Gram-Schmidt in the E inner product for numerical stability.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < q_.size(); ++i) {
      const double c = dot(w_[i].data(), q.data(), n_);
      axpy(-c, q_[i].data(), q.data(), n_);
      axpy(-c, w_[i].data(), w.data(), n_);
    }
  }
  const double nrm2 = dot(q.data(), w.data(), n_);
  if (!(nrm2 > 1e-28)) return;  // linearly dependent; drop
  const double inv = 1.0 / std::sqrt(nrm2);
  for (std::size_t k = 0; k < n_; ++k) {
    q[k] *= inv;
    w[k] *= inv;
  }
  q_.push_back(std::move(q));
  w_.push_back(std::move(w));
}

void SolutionProjection::restore_basis(std::vector<std::vector<double>> q,
                                       std::vector<std::vector<double>> w) {
  TSEM_REQUIRE(q.size() == w.size());
  if (static_cast<int>(q.size()) > lmax_) {
    q.resize(lmax_);
    w.resize(lmax_);
  }
  for (std::size_t i = 0; i < q.size(); ++i)
    TSEM_REQUIRE(q[i].size() == n_ && w[i].size() == n_);
  q_ = std::move(q);
  w_ = std::move(w);
}

void SolutionProjection::update(const double* p, const double* p0,
                                const Apply& apply) {
  std::vector<double> delta(n_);
  for (std::size_t k = 0; k < n_; ++k) delta[k] = p[k] - p0[k];
  std::vector<double> image(n_);

  if (static_cast<int>(q_.size()) >= lmax_) {
    // Window full: restart the basis from the current full solution.
    clear();
    std::copy(p, p + n_, delta.data());
  }
  apply(delta.data(), image.data());
  push(std::move(delta), std::move(image));
}

}  // namespace tsem
