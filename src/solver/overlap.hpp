// Ghost-layer exchange for the overlapping Schwarz preconditioner
// (paper §5, Fig 5 right).
//
// Each element's local subdomain extends `nlayers` Gauss points into its
// face neighbors.  The exchange is organized around geometric "anchors":
// the intersection points of each element's tangential Gauss lines with
// its faces.  For conforming meshes both sharing elements compute the
// same anchor coordinates, so matching anchors (and a layer index) pairs
// up donor and receiver slots without any explicit neighbor/orientation
// bookkeeping — the machinery reduces to the same gather-scatter kernel
// used for residual assembly.
//
// Slot layout: slot(e, f, t) = (e * 2*dim + f) * nt + t, with f = 2*axis
// + side and t the tangential multi-index (x-fastest among the non-normal
// axes); layers are stored as consecutive nslots-sized blocks.
#pragma once

#include <memory>
#include <vector>

#include "core/pressure.hpp"
#include "gs/gather_scatter.hpp"

namespace tsem {

class GhostExchange {
 public:
  GhostExchange(const PressureSystem& psys, int nlayers);
  /// Mesh-level form: the exchange pattern depends only on the mesh
  /// geometry and the Gauss grid size, so simulated-machine profiling can
  /// build it without assembling a PressureSystem.
  GhostExchange(const Mesh& m, int ng1, int nlayers);

  [[nodiscard]] int nlayers() const { return nlayers_; }
  /// Slots per layer (= nelem * 2*dim * ng1^(dim-1)).
  [[nodiscard]] std::size_t nslots() const { return nslots_; }
  // Geometry of the slot layout, exposed so a rank-local executor
  // (mp/dist_schwarz.hpp) can replicate donor_node() with local element
  // indices.
  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] int ng1() const { return ng1_; }
  /// Tangential slots per face (ng1^(dim-1)).
  [[nodiscard]] int tang_slots() const { return nt_; }

  /// Fill ghost[l*nslots + slot] with the neighbor's layer-l value
  /// adjacent to each face (0 beyond physical boundaries), reading from
  /// the pressure field p.
  void exchange(const double* p, double* ghost) const;

  /// Reverse path: v[l*nslots + slot] holds this element's local-solve
  /// value at its ghost points; route each to the neighbor that owns the
  /// underlying dof and accumulate into p.
  void scatter_add(const double* v, double* p) const;

  /// FP32 ghost path (DESIGN.md "Precision policy"): identical routing,
  /// but staging buffers and the gather-scatter reduction run in float
  /// (half the exchanged bytes).  The field p stays FP64 on both sides:
  /// exchange reads double and demotes into the float staging; the
  /// reverse scatter_add accumulates the float contributions back into
  /// the double field.
  void exchange(const double* p, float* ghost) const;
  void scatter_add(const float* v, double* p) const;

  /// Local pressure dof index for (slot, layer) — the donor node.
  [[nodiscard]] std::size_t donor_node(std::size_t slot, int layer) const;

  /// The underlying anchor-id gather-scatter (one op per layer per
  /// exchange/scatter_add pass).
  [[nodiscard]] const GatherScatter& gather_scatter() const { return gs_; }

  /// Message-passing profile of one ghost-layer gs_op under an element
  /// partition (slots are element-major, 2*dim*nt per element).
  [[nodiscard]] CommProfile comm_profile(const std::vector<int>& elem_rank,
                                         int nranks) const;

  /// Byte round-trip for the fleet setup cache.  The exchange pattern is
  /// pure shape data (anchor matching over the mesh geometry), so a
  /// shape-identical worker replays the finished GatherScatter instead of
  /// redoing the anchor interpolation + point numbering.  deserialize
  /// validates the stored layout against the mesh and the caller's
  /// (ng1, nlayers) and returns nullptr on any mismatch or structural
  /// defect — it never trusts the bytes.
  void serialize(ByteWriter& w) const;
  [[nodiscard]] static std::unique_ptr<GhostExchange> deserialize(
      ByteReader& r, const Mesh& m, int ng1, int nlayers);

 private:
  GhostExchange() = default;

  int dim_, ng1_, nlayers_;
  int nt_;  // tangential slots per face
  std::size_t nslots_;
  GatherScatter gs_;
  mutable std::vector<double> buf_;
  mutable std::vector<double> own_;
  // Float twins of the staging buffers, for the FP32 overloads.
  mutable std::vector<float> buf32_;
  mutable std::vector<float> own32_;
};

}  // namespace tsem
