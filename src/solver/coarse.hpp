// Coarse-grid solver backends (paper §5, Fig 6).
//
// All three produce the same x0 = A0^{-1} b0; they differ in parallel
// cost, which bench_fig6_coarse models on the simulated machine:
//   * XxtCoarse            — the paper's X X^T sparse-factorization solver;
//   * RedundantLuCoarse    — every rank gathers b0 and back-solves a banded
//                            Cholesky factorization redundantly;
//   * DistributedInvCoarse — A0^{-1} rows distributed; allgather b0 then a
//                            local dense row block product.
#pragma once

#include <memory>
#include <vector>

#include "common/csr.hpp"
#include "solver/xxt.hpp"
#include "tensor/linalg.hpp"

namespace tsem {

class CoarseSolver {
 public:
  virtual ~CoarseSolver() = default;
  virtual void solve(const double* b, double* x) const = 0;
  [[nodiscard]] virtual int n() const = 0;
};

class XxtCoarse final : public CoarseSolver {
 public:
  XxtCoarse(const CsrMatrix& a, const std::vector<double>& x,
            const std::vector<double>& y, const std::vector<double>& z,
            int nlevels);
  /// Adopt an already-factored solver (setup-cache replay path: the
  /// dissection + factorization were done once by the publishing worker
  /// and deserialized here — see XxtSolver::deserialize).
  explicit XxtCoarse(std::unique_ptr<XxtSolver> solver);
  void solve(const double* b, double* x) const override;
  [[nodiscard]] int n() const override { return solver_->n(); }
  [[nodiscard]] const XxtSolver& xxt() const { return *solver_; }

 private:
  std::unique_ptr<XxtSolver> solver_;
};

class RedundantLuCoarse final : public CoarseSolver {
 public:
  explicit RedundantLuCoarse(const CsrMatrix& a);
  void solve(const double* b, double* x) const override;
  [[nodiscard]] int n() const override { return n_; }
  [[nodiscard]] int bandwidth() const { return chol_.bandwidth(); }
  [[nodiscard]] double solve_flops() const { return chol_.solve_flops(); }

 private:
  int n_;
  BandedCholesky chol_;
};

class DistributedInvCoarse final : public CoarseSolver {
 public:
  /// Builds the explicit inverse (rows of A^{-1}); n is capped since the
  /// construction is O(n^2 * bandwidth).
  explicit DistributedInvCoarse(const CsrMatrix& a);
  void solve(const double* b, double* x) const override;
  [[nodiscard]] int n() const override { return n_; }

 private:
  int n_;
  std::vector<double> inv_;
};

/// Zero row/column `dof` of a (keeping a unit diagonal): regularizes the
/// singular pure-Neumann coarse operator by pinning one vertex.
CsrMatrix pin_dof(const CsrMatrix& a, int dof);

}  // namespace tsem
