#include "solver/setup_bundle.hpp"

#include "io/binfile.hpp"

namespace tsem {
namespace {

constexpr std::uint32_t kBundleMagic = 0x42555354u;  // "TSUB"
// v2: appended the GhostExchange and Space-connectivity sections.
constexpr std::uint32_t kBundleVersion = 2;

}  // namespace

void serialize_mesh(const Mesh& m, std::vector<std::uint8_t>* out) {
  ByteWriter w;
  w.put<std::int32_t>(m.dim);
  w.put<std::int32_t>(m.order);
  w.put<std::int32_t>(m.nelem);
  w.put<std::int32_t>(m.npe);
  w.put<std::int64_t>(m.nglob);
  w.put<std::int64_t>(m.nvert);
  w.put_vec(m.x);
  w.put_vec(m.y);
  w.put_vec(m.z);
  w.put_pod_vec(m.node_id);
  w.put_pod_vec(m.vert_id);
  w.put_vec(m.jac);
  w.put_vec(m.bm);
  w.put_vec(m.g);
  w.put_vec(m.drdx);
  w.put_pod_vec(m.bdry_bits);
  *out = w.take();
}

bool deserialize_mesh(const std::vector<std::uint8_t>& in, Mesh* out) {
  ByteReader r(in);
  Mesh m;
  std::int32_t dim = 0, order = 0, nelem = 0, npe = 0;
  if (!r.get(&dim) || !r.get(&order) || !r.get(&nelem) || !r.get(&npe) ||
      !r.get(&m.nglob) || !r.get(&m.nvert))
    return false;
  if ((dim != 2 && dim != 3) || order < 1 || nelem < 1 || npe < 1)
    return false;
  m.dim = dim;
  m.order = order;
  m.nelem = nelem;
  m.npe = npe;
  if (!r.get_vec(&m.x) || !r.get_vec(&m.y) || !r.get_vec(&m.z) ||
      !r.get_pod_vec(&m.node_id) || !r.get_pod_vec(&m.vert_id) ||
      !r.get_vec(&m.jac) || !r.get_vec(&m.bm) || !r.get_vec(&m.g) ||
      !r.get_vec(&m.drdx) || !r.get_pod_vec(&m.bdry_bits) || !r.exhausted())
    return false;
  const std::size_t nl = static_cast<std::size_t>(nelem) * npe;
  if (m.x.size() != nl || m.y.size() != nl ||
      m.z.size() != (dim == 3 ? nl : 0) || m.node_id.size() != nl ||
      m.vert_id.size() != (static_cast<std::size_t>(nelem) << dim) ||
      m.jac.size() != nl || m.bm.size() != nl ||
      m.g.size() != static_cast<std::size_t>(m.ngeo()) * nl ||
      m.drdx.size() != static_cast<std::size_t>(dim) * dim * nl ||
      m.bdry_bits.size() != nl)
    return false;
  for (const std::int64_t id : m.node_id)
    if (id < 0 || id >= m.nglob) return false;
  for (const std::int64_t id : m.vert_id)
    if (id < 0 || id >= m.nvert) return false;
  *out = std::move(m);
  return true;
}

void serialize_schwarz_fdm(const std::vector<FdmLocal>& fdm,
                           const std::vector<int>& fdm_of,
                           std::vector<std::uint8_t>* out) {
  ByteWriter w;
  w.put<std::uint64_t>(fdm.size());
  for (const FdmLocal& f : fdm) f.serialize(w);
  w.put_pod_vec(fdm_of);
  *out = w.take();
}

bool deserialize_schwarz_fdm(const std::vector<std::uint8_t>& in, int nelem,
                             std::vector<FdmLocal>* fdm,
                             std::vector<int>* fdm_of) {
  ByteReader r(in);
  std::uint64_t nuniq = 0;
  if (!r.get(&nuniq)) return false;
  if (nuniq == 0 || nuniq > static_cast<std::uint64_t>(nelem)) return false;
  std::vector<FdmLocal> uf(static_cast<std::size_t>(nuniq));
  for (auto& f : uf)
    if (!f.deserialize(r)) return false;
  std::vector<int> of;
  if (!r.get_pod_vec(&of) || !r.exhausted()) return false;
  if (of.size() != static_cast<std::size_t>(nelem)) return false;
  for (const int e : of)
    if (e < 0 || e >= static_cast<int>(nuniq)) return false;
  *fdm = std::move(uf);
  *fdm_of = std::move(of);
  return true;
}

std::vector<std::uint8_t> encode_setup_bundle(const SetupBundle& b) {
  ByteWriter w;
  w.put<std::uint32_t>(kBundleMagic);
  w.put<std::uint32_t>(kBundleVersion);
  w.put_bytes(b.mesh);
  w.put_bytes(b.fdm);
  w.put_bytes(b.xxt);
  w.put_bytes(b.dealias);
  w.put_bytes(b.mxm);
  w.put_bytes(b.ghost);
  w.put_bytes(b.gs);
  return w.take();
}

bool decode_setup_bundle(const std::vector<std::uint8_t>& bytes,
                         SetupBundle* out) {
  return decode_setup_bundle(bytes.data(), bytes.size(), out);
}

bool decode_setup_bundle(const std::uint8_t* data, std::size_t n,
                         SetupBundle* out) {
  ByteReader r(data, n);
  std::uint32_t magic = 0, version = 0;
  if (!r.get(&magic) || !r.get(&version) || magic != kBundleMagic ||
      version != kBundleVersion)
    return false;
  SetupBundle b;
  if (!r.get_bytes(&b.mesh) || !r.get_bytes(&b.fdm) || !r.get_bytes(&b.xxt) ||
      !r.get_bytes(&b.dealias) || !r.get_bytes(&b.mxm) ||
      !r.get_bytes(&b.ghost) || !r.get_bytes(&b.gs) || !r.exhausted())
    return false;
  *out = std::move(b);
  return true;
}

}  // namespace tsem
