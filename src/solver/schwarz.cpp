#include "solver/schwarz.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>

#include "common/check.hpp"
#include "fem/fem.hpp"
#include "io/binfile.hpp"
#include "obs/metrics.hpp"
#include "solver/setup_bundle.hpp"
#include "poly/basis1d.hpp"
#include "tensor/linalg.hpp"

namespace tsem {
namespace {

// Physical extent of element e along reference axis d: distance between
// the centroids of the two opposite faces.
double element_extent(const Mesh& m, int e, int axis) {
  const int n1 = m.n1d();
  const std::size_t off = static_cast<std::size_t>(e) * m.npe;
  double clo[3] = {0, 0, 0}, chi[3] = {0, 0, 0};
  int count = 0;
  auto visit = [&](int i, int j, int k) {
    int idx3[3] = {i, j, k};
    double* c = (idx3[axis] == 0) ? clo : chi;
    std::size_t idx = off;
    if (m.dim == 2)
      idx += static_cast<std::size_t>(j) * n1 + i;
    else
      idx += (static_cast<std::size_t>(k) * n1 + j) * n1 + i;
    c[0] += m.x[idx];
    c[1] += m.y[idx];
    if (m.dim == 3) c[2] += m.z[idx];
    if (idx3[axis] == 0) ++count;
  };
  const int kmax = m.dim == 3 ? n1 : 1;
  for (int k = 0; k < kmax; ++k)
    for (int j = 0; j < n1; ++j)
      for (int i = 0; i < n1; ++i) {
        int idx3[3] = {i, j, k};
        if (idx3[axis] == 0 || idx3[axis] == m.order) visit(i, j, k);
      }
  double d2 = 0.0;
  for (int c = 0; c < 3; ++c) {
    const double d = (chi[c] - clo[c]) / count;
    d2 += d * d;
  }
  return std::sqrt(d2);
}

// Extended 1D subdomain grid of element e: a Dirichlet ring point, `ov`
// ghost points, the ng1 Gauss points, `ov` ghost points, the high ring
// point — positions scaled by the element extent per direction.  sig
// (when non-null) accumulates the concatenated coordinates, the bitwise
// dedup signature shared by every builder below.
std::array<std::vector<double>, 3> schwarz_local_grid(
    const Mesh& m, int e, int ng1, int ov, const std::vector<double>& g,
    std::vector<double>* sig) {
  std::array<std::vector<double>, 3> pts;
  for (int d = 0; d < m.dim; ++d) {
    const double len = element_extent(m, e, d);
    auto offv = [&](int i) { return len * (g[i] + 1.0) * 0.5; };
    auto& p = pts[d];
    p.push_back(-offv(ov));  // Dirichlet ring (low)
    for (int l = ov - 1; l >= 0; --l) p.push_back(-offv(l));
    for (int i = 0; i < ng1; ++i) p.push_back(offv(i));
    for (int l = 0; l < ov; ++l) p.push_back(len + offv(l));
    p.push_back(len + offv(ov));  // Dirichlet ring (high)
    if (sig) sig->insert(sig->end(), p.begin(), p.end());
  }
  return pts;
}

}  // namespace

std::vector<FdmLocal> build_schwarz_fdm(const Mesh& m, int ng1, int overlap,
                                        std::vector<int>* fdm_of) {
  TSEM_REQUIRE(ng1 >= 1 && overlap >= 0 && overlap < ng1);
  TSEM_REQUIRE(fdm_of != nullptr);
  const auto& g = gauss_nodes(ng1);
  std::vector<FdmLocal> fdm;
  fdm_of->assign(m.nelem, 0);
  std::map<std::vector<double>, int> fdm_index;
  for (int e = 0; e < m.nelem; ++e) {
    std::vector<double> sig;
    const auto pts = schwarz_local_grid(m, e, ng1, overlap, g, &sig);
    auto [it, fresh] =
        fdm_index.emplace(std::move(sig), static_cast<int>(fdm.size()));
    if (fresh) fdm.emplace_back(pts, m.dim);
    (*fdm_of)[e] = it->second;
  }
  return fdm;
}

SchwarzLocalSolver::SchwarzLocalSolver(const Mesh& m, int ng1, int overlap)
    : dim_(m.dim), ng1_(ng1), ov_(overlap) {
  m1_ = ng1_ + 2 * ov_;
  nt_ = dim_ == 2 ? ng1_ : ng1_ * ng1_;
  npe_ = 1;
  for (int d = 0; d < dim_; ++d) npe_ *= static_cast<std::size_t>(ng1_);
  nle_ = 1;
  for (int d = 0; d < dim_; ++d) nle_ *= static_cast<std::size_t>(m1_);
  fdm_ = build_schwarz_fdm(m, ng1_, ov_, &fdm_of_);
}

void SchwarzLocalSolver::solve_elems(const std::int32_t* elems,
                                     const std::int32_t* blk,
                                     std::size_t nelems, const double* r,
                                     const double* ghost, std::size_t nslots,
                                     double* z, double* vout,
                                     double* work) const {
  double* rloc = work;
  double* zloc = work + nle_;
  double* lwork = work + 2 * nle_;  // 3 * nle_ for FdmLocal::solve
  for (std::size_t i = 0; i < nelems; ++i) {
    const int ge = elems[i];
    const std::size_t be = static_cast<std::size_t>(blk ? blk[i] : elems[i]);
    const std::size_t poff = be * npe_;
    const std::size_t soff = be * static_cast<std::size_t>(2 * dim_) * nt_;
    // Gather: own dofs into the interior, ghost strips on the faces, the
    // Dirichlet ring stays zero — same fill as SchwarzPrecond's
    // gather_residual, with `be` indexing the field arrays.
    std::fill(rloc, rloc + nle_, 0.0);
    if (dim_ == 2) {
      for (int j = 0; j < ng1_; ++j)
        for (int i1 = 0; i1 < ng1_; ++i1)
          rloc[(j + ov_) * m1_ + (i1 + ov_)] = r[poff + j * ng1_ + i1];
    } else {
      for (int k = 0; k < ng1_; ++k)
        for (int j = 0; j < ng1_; ++j)
          for (int i1 = 0; i1 < ng1_; ++i1)
            rloc[((k + ov_) * m1_ + (j + ov_)) * m1_ + (i1 + ov_)] =
                r[poff + (k * ng1_ + j) * ng1_ + i1];
    }
    for (int f = 0; f < 2 * dim_; ++f) {
      const int axis = f / 2, side = f % 2;
      for (int l = 0; l < ov_; ++l) {
        for (int t = 0; t < nt_; ++t) {
          const std::size_t slot = soff + static_cast<std::size_t>(f) * nt_ + t;
          const double gv = ghost[static_cast<std::size_t>(l) * nslots + slot];
          int idx[3] = {0, 0, 0};
          idx[axis] = (side == 0) ? (ov_ - 1 - l) : (ov_ + ng1_ + l);
          if (dim_ == 2) {
            idx[1 - axis] = ov_ + t;
            rloc[idx[1] * m1_ + idx[0]] = gv;
          } else {
            int taxes[2], ti = 0;
            for (int d = 0; d < 3; ++d)
              if (d != axis) taxes[ti++] = d;
            idx[taxes[0]] = ov_ + t % ng1_;
            idx[taxes[1]] = ov_ + t / ng1_;
            rloc[(idx[2] * m1_ + idx[1]) * m1_ + idx[0]] = gv;
          }
        }
      }
    }

    fdm_[static_cast<std::size_t>(fdm_of_[static_cast<std::size_t>(ge)])]
        .solve(rloc, zloc, lwork);

    // Scatter: own part accumulated into z, ghost returns into vout.
    if (dim_ == 2) {
      for (int j = 0; j < ng1_; ++j)
        for (int i1 = 0; i1 < ng1_; ++i1)
          z[poff + j * ng1_ + i1] += zloc[(j + ov_) * m1_ + (i1 + ov_)];
    } else {
      for (int k = 0; k < ng1_; ++k)
        for (int j = 0; j < ng1_; ++j)
          for (int i1 = 0; i1 < ng1_; ++i1)
            z[poff + (k * ng1_ + j) * ng1_ + i1] +=
                zloc[((k + ov_) * m1_ + (j + ov_)) * m1_ + (i1 + ov_)];
    }
    for (int f = 0; f < 2 * dim_; ++f) {
      const int axis = f / 2, side = f % 2;
      for (int l = 0; l < ov_; ++l) {
        for (int t = 0; t < nt_; ++t) {
          const std::size_t slot = soff + static_cast<std::size_t>(f) * nt_ + t;
          int idx[3] = {0, 0, 0};
          idx[axis] = (side == 0) ? (ov_ - 1 - l) : (ov_ + ng1_ + l);
          double v;
          if (dim_ == 2) {
            idx[1 - axis] = ov_ + t;
            v = zloc[idx[1] * m1_ + idx[0]];
          } else {
            int taxes[2], ti = 0;
            for (int d = 0; d < 3; ++d)
              if (d != axis) taxes[ti++] = d;
            idx[taxes[0]] = ov_ + t % ng1_;
            idx[taxes[1]] = ov_ + t / ng1_;
            v = zloc[(idx[2] * m1_ + idx[1]) * m1_ + idx[0]];
          }
          vout[static_cast<std::size_t>(l) * nslots + slot] = v;
        }
      }
    }
  }
}

SchwarzPrecond::SchwarzPrecond(const PressureSystem& psys, SchwarzOptions opt)
    : psys_(&psys), opt_(opt) {
  const Mesh& m = psys.vspace().mesh();
  dim_ = m.dim;
  ng1_ = psys.ng1();
  if (opt_.local == SchwarzOptions::Local::Fdm) TSEM_REQUIRE(opt_.overlap == 1);
  TSEM_REQUIRE(opt_.overlap >= 0 && opt_.overlap < ng1_);
  m1_ = ng1_ + 2 * opt_.overlap;
  nle_ = 1;
  for (int d = 0; d < dim_; ++d) nle_ *= m1_;
  if (opt_.overlap > 0) {
    // Setup-cache replay: the exchange pattern is pure shape data, so a
    // published GhostExchange skips the anchor interpolation + geometric
    // point numbering.  Any validation failure falls back cold.
    if (opt_.setup_import != nullptr && !opt_.setup_import->ghost.empty()) {
      ByteReader r(opt_.setup_import->ghost);
      ghosts_ = GhostExchange::deserialize(r, m, ng1_, opt_.overlap);
      if (ghosts_ != nullptr && !r.exhausted()) ghosts_.reset();
    }
    if (ghosts_ == nullptr)
      ghosts_ = std::make_unique<GhostExchange>(psys, opt_.overlap);
    if (opt_.setup_record != nullptr) {
      ByteWriter w;
      ghosts_->serialize(w);
      opt_.setup_record->ghost = w.take();
    }
  }
  build_local_grids();
  if (opt_.use_coarse) build_coarse();
  if (ghosts_) {
    ghost_.resize(static_cast<std::size_t>(opt_.overlap) * ghosts_->nslots());
    vout_.resize(ghost_.size());
  }
  // Batch staging buffers sized once here so apply() never allocates.
  batch_r_.resize(static_cast<std::size_t>(m.nelem) * nle_);
  batch_z_.resize(batch_r_.size());

  // FP32 is honored for the FDM local only; the FemP1 baseline keeps its
  // FP64 Cholesky factors.
  precision_ = (opt_.precision == PrecondPrecision::Fp32 &&
                opt_.local == SchwarzOptions::Local::Fdm)
                   ? PrecondPrecision::Fp32
                   : PrecondPrecision::Fp64;
  if (precision_ == PrecondPrecision::Fp32) {
    batch_r32_.resize(batch_r_.size());
    batch_z32_.resize(batch_r_.size());
    if (ghosts_) {
      ghost32_.resize(ghost_.size());
      vout32_.resize(ghost_.size());
    }
  }
  // Event only for the non-default policy: default FP64 construction
  // stays silent so event streams keyed on exact counts are unchanged.
  if (precision_ == PrecondPrecision::Fp32) {
    obs::count("schwarz/fp32_setups");
    obs::Json ev;
    ev["type"] = "schwarz_precision";
    ev["precision"] = precond_precision_name(precision_);
    ev["local"] = opt_.local == SchwarzOptions::Local::Fdm ? "fdm" : "fem_p1";
    ev["overlap"] = opt_.overlap;
    obs::emit_event(std::move(ev));
  }
}

void SchwarzPrecond::build_local_grids() {
  const Mesh& m = psys_->vspace().mesh();
  const int ov = opt_.overlap;
  local_flops_ = 0.0;
  if (opt_.local == SchwarzOptions::Local::Fdm) {
    // Setup-cache replay: restore the deduplicated eigendecompositions
    // instead of re-solving the generalized eigenproblems.  A missing or
    // structurally invalid section falls back to the cold build, which
    // produces bitwise the same factorizations.
    bool restored = false;
    if (opt_.setup_import != nullptr && !opt_.setup_import->fdm.empty()) {
      restored = deserialize_schwarz_fdm(opt_.setup_import->fdm, m.nelem,
                                         &fdm_, &fdm_of_);
      if (!restored) {
        fdm_.clear();
        fdm_of_.clear();
      }
    }
    if (!restored) fdm_ = build_schwarz_fdm(m, ng1_, ov, &fdm_of_);
    if (opt_.setup_record != nullptr)
      serialize_schwarz_fdm(fdm_, fdm_of_, &opt_.setup_record->fdm);
    for (int e = 0; e < m.nelem; ++e)
      local_flops_ += fdm_[fdm_of_[e]].solve_flops();
  } else {
    const auto& g = gauss_nodes(ng1_);
    fdm_of_.assign(m.nelem, 0);
    for (int e = 0; e < m.nelem; ++e) {
      const auto pts = schwarz_local_grid(m, e, ng1_, ov, g, nullptr);
      std::vector<double> a =
          (dim_ == 2) ? p1_laplacian_2d(pts[0], pts[1])
                      : p1_laplacian_3d(pts[0], pts[1], pts[2]);
      const int n = static_cast<int>(nle_);
      TSEM_REQUIRE(cholesky_factor(a.data(), n));
      fem_.push_back(std::move(a));
      local_flops_ += 2.0 * static_cast<double>(nle_) * nle_;
    }
  }

  // Slot permutation: elements grouped by factorization (first-appearance
  // order), then cut into chunks of <= kBatch.  FemP1 groups elements in
  // mesh order (pass 2 solves per slot either way).
  slot_of_.assign(m.nelem, 0);
  elem_of_slot_.assign(m.nelem, 0);
  chunks_.clear();
  std::vector<std::vector<int>> groups;
  if (opt_.local == SchwarzOptions::Local::Fdm) {
    groups.resize(fdm_.size());
    for (int e = 0; e < m.nelem; ++e) groups[fdm_of_[e]].push_back(e);
  } else {
    groups.emplace_back(m.nelem);
    for (int e = 0; e < m.nelem; ++e) groups[0][e] = e;
  }
  int slot = 0;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    for (std::size_t i = 0; i < groups[gi].size(); ++i) {
      const int e = groups[gi][i];
      slot_of_[e] = slot;
      elem_of_slot_[slot] = e;
      if (i % kBatch == 0)
        chunks_.push_back({static_cast<int>(gi), slot, 0});
      ++chunks_.back().count;
      ++slot;
    }
  }
}

void SchwarzPrecond::build_coarse() {
  const Mesh& m = psys_->vspace().mesh();
  // Setup-cache replay: adopt the published factored tree and skip the
  // Q1 assembly, nested dissection, and X X^T factorization entirely.
  if (opt_.setup_import != nullptr && !opt_.setup_import->xxt.empty()) {
    ByteReader r(opt_.setup_import->xxt);
    auto solver = XxtSolver::deserialize(r);
    if (solver != nullptr && r.exhausted() &&
        solver->n() == static_cast<int>(m.nvert))
      coarse_ = std::make_unique<XxtCoarse>(std::move(solver));
  }
  if (coarse_ == nullptr) {
    CsrMatrix a0 = pin_dof(q1_vertex_laplacian(m), 0);
    std::vector<double> vx, vy, vz;
    vertex_coords(m, vx, vy, vz);
    int nlev = opt_.coarse_nlevels;
    if (nlev < 0) {
      nlev = 0;
      while ((m.nvert >> (nlev + 1)) >= 32 && nlev < 12) ++nlev;
    }
    coarse_ = std::make_unique<XxtCoarse>(a0, vx, vy, vz, nlev);
  }
  if (opt_.setup_record != nullptr) {
    if (const auto* xc = dynamic_cast<const XxtCoarse*>(coarse_.get())) {
      ByteWriter w;
      xc->xxt().serialize(w);
      opt_.setup_record->xxt = w.take();
    }
  }
  cb_.resize(m.nvert);
  cx_.resize(m.nvert);

  // Bilinear corner weights at the Gauss points (reference element).
  const auto& g = gauss_nodes(ng1_);
  const int ncorner = 1 << dim_;
  const int npe = psys_->npe();
  r0w_.assign(static_cast<std::size_t>(ncorner) * npe, 0.0);
  for (int c = 0; c < ncorner; ++c) {
    for (int q = 0; q < npe; ++q) {
      double w = 1.0;
      int rem = q;
      for (int d = 0; d < dim_; ++d) {
        const int qi = rem % ng1_;
        rem /= ng1_;
        const double gd = g[qi];
        w *= ((c >> d) & 1) ? 0.5 * (1.0 + gd) : 0.5 * (1.0 - gd);
      }
      r0w_[static_cast<std::size_t>(c) * npe + q] = w;
    }
  }
}

// Gather pass of apply(): residuals (and ghost strips) into per-element
// batch slots.  T = double (FP64 path) or float (FP32 path: the residual
// is demoted here, once, on entry to the preconditioner).
template <typename T>
void SchwarzPrecond::gather_residual(const double* r, const T* ghost,
                                     T* batch_r) const {
  const Mesh& m = psys_->vspace().mesh();
  const int npe = psys_->npe();
  const int ov = opt_.overlap;
  const std::size_t nslots = ghosts_ ? ghosts_->nslots() : 0;
  const int nt = dim_ == 2 ? ng1_ : ng1_ * ng1_;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int e = 0; e < m.nelem; ++e) {
    T* rloc = batch_r + static_cast<std::size_t>(slot_of_[e]) * nle_;
    const std::size_t poff = static_cast<std::size_t>(e) * npe;
    std::fill(rloc, rloc + nle_, T(0));
    // Own dofs.
    if (dim_ == 2) {
      for (int j = 0; j < ng1_; ++j)
        for (int i = 0; i < ng1_; ++i)
          rloc[(j + ov) * m1_ + (i + ov)] =
              static_cast<T>(r[poff + j * ng1_ + i]);
    } else {
      for (int k = 0; k < ng1_; ++k)
        for (int j = 0; j < ng1_; ++j)
          for (int i = 0; i < ng1_; ++i)
            rloc[((k + ov) * m1_ + (j + ov)) * m1_ + (i + ov)] =
                static_cast<T>(r[poff + (k * ng1_ + j) * ng1_ + i]);
    }
    // Ghost strips.
    if (ghosts_) {
      for (int f = 0; f < 2 * dim_; ++f) {
        const int axis = f / 2, side = f % 2;
        for (int l = 0; l < ov; ++l) {
          for (int t = 0; t < nt; ++t) {
            const std::size_t slot =
                (static_cast<std::size_t>(e) * 2 * dim_ + f) * nt + t;
            const T gv = ghost[static_cast<std::size_t>(l) * nslots + slot];
            int idx[3] = {0, 0, 0};
            idx[axis] = (side == 0) ? (ov - 1 - l) : (ov + ng1_ + l);
            if (dim_ == 2) {
              idx[1 - axis] = ov + t;
              rloc[idx[1] * m1_ + idx[0]] = gv;
            } else {
              int taxes[2], ti = 0;
              for (int d = 0; d < 3; ++d)
                if (d != axis) taxes[ti++] = d;
              idx[taxes[0]] = ov + t % ng1_;
              idx[taxes[1]] = ov + t / ng1_;
              rloc[(idx[2] * m1_ + idx[1]) * m1_ + idx[0]] = gv;
            }
          }
        }
      }
    }
  }
}

// Scatter pass of apply(): local solutions back onto the pressure dofs
// (FP64 accumulate — the promotion to double happens before the += when
// T = float) and into the ghost return staging.
template <typename T>
void SchwarzPrecond::scatter_solution(const T* batch_z, T* vout,
                                      double* z) const {
  const Mesh& m = psys_->vspace().mesh();
  const int npe = psys_->npe();
  const int ov = opt_.overlap;
  const std::size_t nslots = ghosts_ ? ghosts_->nslots() : 0;
  const int nt = dim_ == 2 ? ng1_ : ng1_ * ng1_;
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int e = 0; e < m.nelem; ++e) {
    const T* zloc = batch_z + static_cast<std::size_t>(slot_of_[e]) * nle_;
    const std::size_t poff = static_cast<std::size_t>(e) * npe;
    // Scatter own part.
    if (dim_ == 2) {
      for (int j = 0; j < ng1_; ++j)
        for (int i = 0; i < ng1_; ++i)
          z[poff + j * ng1_ + i] +=
              static_cast<double>(zloc[(j + ov) * m1_ + (i + ov)]);
    } else {
      for (int k = 0; k < ng1_; ++k)
        for (int j = 0; j < ng1_; ++j)
          for (int i = 0; i < ng1_; ++i)
            z[poff + (k * ng1_ + j) * ng1_ + i] += static_cast<double>(
                zloc[((k + ov) * m1_ + (j + ov)) * m1_ + (i + ov)]);
    }
    // Ghost parts routed back to the neighbors.
    if (ghosts_) {
      for (int f = 0; f < 2 * dim_; ++f) {
        const int axis = f / 2, side = f % 2;
        for (int l = 0; l < ov; ++l) {
          for (int t = 0; t < nt; ++t) {
            const std::size_t slot =
                (static_cast<std::size_t>(e) * 2 * dim_ + f) * nt + t;
            int idx[3] = {0, 0, 0};
            idx[axis] = (side == 0) ? (ov - 1 - l) : (ov + ng1_ + l);
            T v;
            if (dim_ == 2) {
              idx[1 - axis] = ov + t;
              v = zloc[idx[1] * m1_ + idx[0]];
            } else {
              int taxes[2], ti = 0;
              for (int d = 0; d < 3; ++d)
                if (d != axis) taxes[ti++] = d;
              idx[taxes[0]] = ov + t % ng1_;
              idx[taxes[1]] = ov + t / ng1_;
              v = zloc[(idx[2] * m1_ + idx[1]) * m1_ + idx[0]];
            }
            vout[static_cast<std::size_t>(l) * nslots + slot] = v;
          }
        }
      }
    }
  }
}

void SchwarzPrecond::apply(const double* r, double* z) const {
  const obs::ScopedTimer timer_apply("schwarz/apply");
  const Mesh& m = psys_->vspace().mesh();
  const std::size_t nloc = psys_->nloc();
  const bool fp32 = precision_ == PrecondPrecision::Fp32;

  // Cheap non-finite guard (see nonfinite_applies()): pass a poisoned
  // residual through untouched instead of spending the local/coarse
  // solves on it.
  for (std::size_t i = 0; i < nloc; ++i) {
    if (!std::isfinite(r[i])) {
      ++nonfinite_applies_;
      std::copy(r, r + nloc, z);
      obs::count("schwarz/nonfinite_applies");
      return;
    }
  }
  std::fill(z, z + nloc, 0.0);

  obs::count("schwarz/applies");
  if (fp32) obs::count("schwarz/fp32_applies");
  if (ghosts_) {
    if (fp32)
      ghosts_->exchange(r, ghost32_.data());
    else
      ghosts_->exchange(r, ghost_.data());
  }

  // Local overlapping-subdomain solves (nested label:
  // time/schwarz/apply/local), in three passes over the batch staging
  // buffers: gather residuals into per-element slots, sweep the slots
  // chunk-by-chunk with batched FDM solves, scatter the solutions back.
  // Every pass writes disjoint slots / z entries under a deterministic
  // static schedule, so results are thread-count invariant; chunk slots
  // are contiguous, so one solve_batch call covers a whole chunk.
  obs::ScopedTimer timer_local("local");
  obs::count("schwarz/local_solves", m.nelem);
  obs::count("schwarz/batch_solves", static_cast<std::int64_t>(chunks_.size()));
  if (fp32)
    gather_residual<float>(r, ghost32_.data(), batch_r32_.data());
  else
    gather_residual<double>(r, ghost_.data(), batch_r_.data());

  // Batched local solves, one chunk per iteration.
  const int nchunks = static_cast<int>(chunks_.size());
#ifdef _OPENMP
#pragma omp parallel for schedule(static)
#endif
  for (int ci = 0; ci < nchunks; ++ci) {
    const Chunk& ch = chunks_[ci];
    const std::size_t off = static_cast<std::size_t>(ch.slot0) * nle_;
    if (fp32) {
      // The float slab rides in a dedicated double arena: 2 floats per
      // double, used as float only, so the reinterpret is type-clean for
      // the allocation's effective type.
      const std::size_t nfl = 3 * static_cast<std::size_t>(ch.count) * nle_;
      float* lwork =
          reinterpret_cast<float*>(lscratch32_.get((nfl + 1) / 2));
      fdm_[ch.local].solve_batch_f32(batch_r32_.data() + off,
                                     batch_z32_.data() + off, ch.count,
                                     lwork);
    } else if (opt_.local == SchwarzOptions::Local::Fdm) {
      double* lwork = lscratch_.get(3 * static_cast<std::size_t>(ch.count) * nle_);
      fdm_[ch.local].solve_batch(batch_r_.data() + off,
                                 batch_z_.data() + off, ch.count, lwork);
    } else {
      for (int s = 0; s < ch.count; ++s) {
        const int e = elem_of_slot_[ch.slot0 + s];
        double* zloc = batch_z_.data() + off + static_cast<std::size_t>(s) * nle_;
        std::copy(batch_r_.data() + off + static_cast<std::size_t>(s) * nle_,
                  batch_r_.data() + off + static_cast<std::size_t>(s + 1) * nle_,
                  zloc);
        cholesky_solve(fem_[e].data(), static_cast<int>(nle_), zloc);
      }
    }
  }

  if (fp32) {
    scatter_solution<float>(batch_z32_.data(), vout32_.data(), z);
    if (ghosts_) ghosts_->scatter_add(vout32_.data(), z);
  } else {
    scatter_solution<double>(batch_z_.data(), vout_.data(), z);
    if (ghosts_) ghosts_->scatter_add(vout_.data(), z);
  }
  timer_local.stop();

  // Coarse-grid contribution (always FP64, whatever the local precision).
  if (coarse_) {
    const obs::ScopedTimer timer_coarse("coarse");
    const int npe = psys_->npe();
    std::fill(cb_.begin(), cb_.end(), 0.0);
    const int ncorner = 1 << dim_;
    for (int e = 0; e < m.nelem; ++e) {
      const std::size_t poff = static_cast<std::size_t>(e) * npe;
      const std::int64_t* v =
          &m.vert_id[static_cast<std::size_t>(e) * ncorner];
      for (int c = 0; c < ncorner; ++c) {
        const double* w = r0w_.data() + static_cast<std::size_t>(c) * npe;
        double s = 0.0;
        for (int q = 0; q < npe; ++q) s += w[q] * r[poff + q];
        cb_[v[c]] += s;
      }
    }
    cb_[0] = 0.0;  // pinned vertex
    coarse_->solve(cb_.data(), cx_.data());
    for (int e = 0; e < m.nelem; ++e) {
      const std::size_t poff = static_cast<std::size_t>(e) * npe;
      const std::int64_t* v =
          &m.vert_id[static_cast<std::size_t>(e) * ncorner];
      for (int c = 0; c < ncorner; ++c) {
        const double* w = r0w_.data() + static_cast<std::size_t>(c) * npe;
        const double xc = cx_[v[c]];
        for (int q = 0; q < npe; ++q) z[poff + q] += w[q] * xc;
      }
    }
  }
}

}  // namespace tsem
