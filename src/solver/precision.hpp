// Preconditioner precision policy (DESIGN.md "Precision policy").
//
// The outer Krylov solve is always FP64; the policy only selects the
// arithmetic inside the preconditioner application — the Schwarz/FDM
// local solves, their ghost-exchange staging, and the Jacobi diagonal
// scale.  A preconditioner is free to be any s.p.d.-ish approximation of
// the operator inverse, so running it in FP32 changes the PCG iterate
// path but not what the solve converges to; the contract that replaces
// bitwise equality for this path is iteration count + achieved residual
// (tests/convergence_contract.hpp).
//
// Default is Fp64.  Set TSEM_PRECOND_FP32 (non-empty, not "0") to enable
// the FP32 path; code that builds a preconditioner reads the policy once
// through its options struct, which defaults from the environment.
#pragma once

namespace tsem {

enum class PrecondPrecision { Fp64, Fp32 };

/// Policy encoded by an environment value: unset/empty/"0" -> Fp64,
/// anything else -> Fp32.  Pure function of the argument (testable
/// without setenv games).
PrecondPrecision precond_precision_parse(const char* v);

/// TSEM_PRECOND_FP32 read from the environment.  NOT cached: options
/// structs capture the value at construction, and tests toggle the
/// variable between solves.
PrecondPrecision precond_precision_from_env();

/// "fp64" / "fp32" — obs events and bench meta.
const char* precond_precision_name(PrecondPrecision p);

}  // namespace tsem
