#include "solver/fdm.hpp"

#include "common/check.hpp"
#include "fem/fem.hpp"
#include "io/binfile.hpp"
#include "tensor/linalg.hpp"
#include "tensor/mxm.hpp"
#include "tensor/mxm_f32.hpp"
#include "tensor/tensor_apply.hpp"

namespace tsem {

FdmLocal::FdmLocal(const std::array<std::vector<double>, 3>& pts, int dim)
    : dim_(dim) {
  TSEM_REQUIRE(dim == 2 || dim == 3);
  std::array<std::vector<double>, 3> lambda;
  for (int d = 0; d < dim; ++d) {
    std::vector<double> a, bl;
    fem1d_operators(pts[d], a, bl);
    const int m = static_cast<int>(bl.size());
    m_[d] = m;
    std::vector<double> bmat(static_cast<std::size_t>(m) * m, 0.0);
    for (int i = 0; i < m; ++i) bmat[i * m + i] = bl[i];
    generalized_sym_eig(a.data(), bmat.data(), m, lambda[d], s_[d]);
    st_[d].resize(s_[d].size());
    for (int i = 0; i < m; ++i)
      for (int j = 0; j < m; ++j) st_[d][j * m + i] = s_[d][i * m + j];
  }
  if (dim == 2) {
    inv_lambda_.resize(static_cast<std::size_t>(m_[0]) * m_[1]);
    for (int j = 0; j < m_[1]; ++j)
      for (int i = 0; i < m_[0]; ++i)
        inv_lambda_[j * m_[0] + i] = 1.0 / (lambda[0][i] + lambda[1][j]);
  } else {
    inv_lambda_.resize(static_cast<std::size_t>(m_[0]) * m_[1] * m_[2]);
    for (int k = 0; k < m_[2]; ++k)
      for (int j = 0; j < m_[1]; ++j)
        for (int i = 0; i < m_[0]; ++i)
          inv_lambda_[(k * m_[1] + j) * m_[0] + i] =
              1.0 / (lambda[0][i] + lambda[1][j] + lambda[2][k]);
  }
  for (int d = 0; d < dim; ++d) {
    s32_[d].assign(s_[d].begin(), s_[d].end());
    st32_[d].assign(st_[d].begin(), st_[d].end());
  }
  inv_lambda32_.assign(inv_lambda_.begin(), inv_lambda_.end());
}

void FdmLocal::solve(const double* r, double* z, double* work) const {
  const std::size_t n = size();
  double* t = work;
  double* scratch = work + n;
  if (dim_ == 2) {
    // t = (Sy^T (x) Sx^T) r
    tensor2_apply(st_[0].data(), m_[0], m_[0], st_[1].data(), m_[1], m_[1], r,
                  t, scratch);
    for (std::size_t i = 0; i < n; ++i) t[i] *= inv_lambda_[i];
    tensor2_apply(s_[0].data(), m_[0], m_[0], s_[1].data(), m_[1], m_[1], t,
                  z, scratch);
  } else {
    tensor3_apply(st_[0].data(), m_[0], m_[0], st_[1].data(), m_[1], m_[1],
                  st_[2].data(), m_[2], m_[2], r, t, scratch);
    for (std::size_t i = 0; i < n; ++i) t[i] *= inv_lambda_[i];
    tensor3_apply(s_[0].data(), m_[0], m_[0], s_[1].data(), m_[1], m_[1],
                  s_[2].data(), m_[2], m_[2], t, z, scratch);
  }
}

void FdmLocal::solve_batch(const double* r, double* z, int nb,
                           double* work) const {
  const std::size_t n = size();
  const std::size_t stride = n * static_cast<std::size_t>(nb);
  double* t = work;            // diagonal-scaled intermediate, nb blocks
  double* t1 = work + stride;  // stage scratch
  double* t2 = t1 + stride;    // stage scratch (3D)
  if (dim_ == 2) {
    const int mx = m_[0], my = m_[1];
    mxm_bt(r, nb * my, st_[0].data(), mx, t1, mx);
    for (int e = 0; e < nb; ++e)
      mxm(st_[1].data(), my, t1 + e * n, my, t + e * n, mx);
    for (int e = 0; e < nb; ++e) {
      double* te = t + e * n;
      for (std::size_t i = 0; i < n; ++i) te[i] *= inv_lambda_[i];
    }
    mxm_bt(t, nb * my, s_[0].data(), mx, t1, mx);
    for (int e = 0; e < nb; ++e)
      mxm(s_[1].data(), my, t1 + e * n, my, z + e * n, mx);
  } else {
    const int mx = m_[0], my = m_[1], mz = m_[2];
    const std::size_t slab = static_cast<std::size_t>(my) * mx;
    mxm_bt(r, nb * mz * my, st_[0].data(), mx, t1, mx);
    for (int s = 0; s < nb * mz; ++s)
      mxm(st_[1].data(), my, t1 + s * slab, my, t2 + s * slab, mx);
    for (int e = 0; e < nb; ++e)
      mxm(st_[2].data(), mz, t2 + e * n, mz, t + e * n, my * mx);
    for (int e = 0; e < nb; ++e) {
      double* te = t + e * n;
      for (std::size_t i = 0; i < n; ++i) te[i] *= inv_lambda_[i];
    }
    mxm_bt(t, nb * mz * my, s_[0].data(), mx, t1, mx);
    for (int s = 0; s < nb * mz; ++s)
      mxm(s_[1].data(), my, t1 + s * slab, my, t2 + s * slab, mx);
    for (int e = 0; e < nb; ++e)
      mxm(s_[2].data(), mz, t2 + e * n, mz, z + e * n, my * mx);
  }
}

// Mirrors solve_batch stage for stage, with one deliberate difference:
// the first tensor stage uses the row-update smxm form on the OTHER
// stored factor (we hold both S and S^T, so r * S^T^T == r * S) instead
// of the bt dot-product form.  The bt dots are latency-bound on the
// reduction chain and gain nothing from float lanes; the row-update form
// keeps every lane busy, which is where the FP32 speedup lives.
void FdmLocal::solve_batch_f32(const float* r, float* z, int nb,
                               float* work) const {
  const std::size_t n = size();
  const std::size_t stride = n * static_cast<std::size_t>(nb);
  float* t = work;
  float* t1 = work + stride;
  float* t2 = t1 + stride;
  if (dim_ == 2) {
    const int mx = m_[0], my = m_[1];
    smxm(r, nb * my, s32_[0].data(), mx, t1, mx);
    for (int e = 0; e < nb; ++e)
      smxm(st32_[1].data(), my, t1 + e * n, my, t + e * n, mx);
    for (int e = 0; e < nb; ++e) {
      float* te = t + e * n;
      for (std::size_t i = 0; i < n; ++i) te[i] *= inv_lambda32_[i];
    }
    smxm(t, nb * my, st32_[0].data(), mx, t1, mx);
    for (int e = 0; e < nb; ++e)
      smxm(s32_[1].data(), my, t1 + e * n, my, z + e * n, mx);
  } else {
    const int mx = m_[0], my = m_[1], mz = m_[2];
    const std::size_t slab = static_cast<std::size_t>(my) * mx;
    smxm(r, nb * mz * my, s32_[0].data(), mx, t1, mx);
    for (int s = 0; s < nb * mz; ++s)
      smxm(st32_[1].data(), my, t1 + s * slab, my, t2 + s * slab, mx);
    for (int e = 0; e < nb; ++e)
      smxm(st32_[2].data(), mz, t2 + e * n, mz, t + e * n, my * mx);
    for (int e = 0; e < nb; ++e) {
      float* te = t + e * n;
      for (std::size_t i = 0; i < n; ++i) te[i] *= inv_lambda32_[i];
    }
    smxm(t, nb * mz * my, st32_[0].data(), mx, t1, mx);
    for (int s = 0; s < nb * mz; ++s)
      smxm(s32_[1].data(), my, t1 + s * slab, my, t2 + s * slab, mx);
    for (int e = 0; e < nb; ++e)
      smxm(s32_[2].data(), mz, t2 + e * n, mz, z + e * n, my * mx);
  }
}

double FdmLocal::solve_flops() const {
  double f = static_cast<double>(size());  // the diagonal scale
  if (dim_ == 2) {
    f += 4.0 * static_cast<double>(m_[0]) * m_[0] * m_[1] +
         4.0 * static_cast<double>(m_[1]) * m_[1] * m_[0];
  } else {
    const double mx = m_[0], my = m_[1], mz = m_[2];
    f += 4.0 * (mx * mx * my * mz + my * my * mx * mz + mz * mz * mx * my);
  }
  return f;
}

void FdmLocal::serialize(ByteWriter& w) const {
  w.put<std::int32_t>(dim_);
  for (int d = 0; d < 3; ++d) w.put<std::int32_t>(m_[d]);
  for (int d = 0; d < 3; ++d) w.put_vec(s_[d]);
  for (int d = 0; d < 3; ++d) w.put_vec(st_[d]);
  w.put_vec(inv_lambda_);
}

bool FdmLocal::deserialize(ByteReader& r) {
  std::int32_t dim = 0, m[3] = {0, 0, 0};
  if (!r.get(&dim)) return false;
  for (int d = 0; d < 3; ++d)
    if (!r.get(&m[d])) return false;
  if (dim != 2 && dim != 3) return false;
  std::array<std::vector<double>, 3> s, st;
  std::vector<double> il;
  for (int d = 0; d < 3; ++d)
    if (!r.get_vec(&s[d])) return false;
  for (int d = 0; d < 3; ++d)
    if (!r.get_vec(&st[d])) return false;
  if (!r.get_vec(&il)) return false;
  std::size_t n = 1;
  for (int d = 0; d < dim; ++d) {
    if (m[d] < 1) return false;
    const std::size_t mm = static_cast<std::size_t>(m[d]) * m[d];
    if (s[d].size() != mm || st[d].size() != mm) return false;
    n *= static_cast<std::size_t>(m[d]);
  }
  if (il.size() != n) return false;
  dim_ = dim;
  for (int d = 0; d < 3; ++d) m_[d] = m[d];
  s_ = std::move(s);
  st_ = std::move(st);
  inv_lambda_ = std::move(il);
  // Same demotion as the constructor: the restored FP32 twins are bitwise
  // identical to the cold-built ones.
  for (int d = 0; d < dim_; ++d) {
    s32_[d].assign(s_[d].begin(), s_[d].end());
    st32_[d].assign(st_[d].begin(), st_[d].end());
  }
  inv_lambda32_.assign(inv_lambda_.begin(), inv_lambda_.end());
  return true;
}

}  // namespace tsem
