// Serializable bundle of expensive setup artifacts (DESIGN.md "Setup
// cache").
//
// A fleet worker's setup cost is dominated by artifacts that are pure
// functions of (mesh spec, order, precision policy, ISA): the mesh
// geometry itself (GLL coordinates, C0 numbering, geometric factors),
// the Schwarz FDM generalized eigendecompositions, the factored XXT
// coarse tree, the dealiasing interpolation matrices, and the mxm
// autotuner's selected-kernel table.  The SetupBundle collects each as an
// independent byte section so the first worker for a shape can RECORD
// them while building, and later workers can REPLAY them and skip
// straight to time-stepping — with bitwise-identical solver state, since
// every section round-trips its FP64 payload exactly.
//
// The bundle itself carries no checksum: integrity of a published bundle
// is the setup cache's job (one CRC-32 over the encoded payload,
// fleet/setup_cache.hpp).  Decoders here only defend structure — a
// section that decodes but is inconsistent with the target mesh is
// rejected and the caller rebuilds cold.
#pragma once

#include <cstdint>
#include <vector>

#include "mesh/mesh.hpp"
#include "solver/fdm.hpp"

namespace tsem {

struct SetupBundle {
  std::vector<std::uint8_t> mesh;     ///< serialize_mesh payload
  std::vector<std::uint8_t> fdm;      ///< unique FdmLocals + fdm_of map
  std::vector<std::uint8_t> xxt;      ///< XxtSolver::serialize payload
  std::vector<std::uint8_t> dealias;  ///< DealiasedConvection payload
  std::vector<std::uint8_t> mxm;      ///< mxm_autotune_export_table blob
  std::vector<std::uint8_t> ghost;    ///< GhostExchange::serialize payload
  std::vector<std::uint8_t> gs;       ///< Space connectivity (GatherScatter)

  [[nodiscard]] bool empty() const {
    return mesh.empty() && fdm.empty() && xxt.empty() && dealias.empty() &&
           mxm.empty() && ghost.empty() && gs.empty();
  }
};

/// Mesh is pure geometry data (no derived pointers), so it round-trips
/// bitwise.  Caching it is what lets a cache hit skip build_mesh — the
/// single largest setup term for the fleet's periodic boxes.
void serialize_mesh(const Mesh& m, std::vector<std::uint8_t>* out);
/// Returns false (out unspecified) on truncated or size-inconsistent
/// payloads.
bool deserialize_mesh(const std::vector<std::uint8_t>& in, Mesh* out);

/// The Schwarz FDM family: deduplicated factorizations + the
/// element->factorization map (matches build_schwarz_fdm's outputs).
void serialize_schwarz_fdm(const std::vector<FdmLocal>& fdm,
                           const std::vector<int>& fdm_of,
                           std::vector<std::uint8_t>* out);
/// nelem is the expected fdm_of length; every map entry is range-checked.
bool deserialize_schwarz_fdm(const std::vector<std::uint8_t>& in, int nelem,
                             std::vector<FdmLocal>* fdm,
                             std::vector<int>* fdm_of);

/// Frame the five sections into one payload (what the setup cache
/// publishes under its CRC) and back.  decode returns false on any
/// framing defect; empty sections are preserved as empty.  The raw-span
/// overload decodes straight out of the shared cache arena — the one
/// copy of each section lands directly in the bundle's vectors.
std::vector<std::uint8_t> encode_setup_bundle(const SetupBundle& b);
bool decode_setup_bundle(const std::uint8_t* data, std::size_t n,
                         SetupBundle* out);
bool decode_setup_bundle(const std::vector<std::uint8_t>& bytes,
                         SetupBundle* out);

}  // namespace tsem
