// Additive overlapping Schwarz preconditioner for the consistent Poisson
// operator E (paper §5; Dryja & Widlund [5]; Fischer [9, 10]):
//
//     M^{-1} = R0^T A0^{-1} R0  +  sum_k R_k^T A~_k^{-1} R_k
//
// Local problems live on each element's Gauss grid extended `overlap`
// points into its neighbors (Fig 5 right), with homogeneous Dirichlet
// conditions one layer beyond; they are solved either by the fast
// diagonalization method (tensor-product separable operator, the paper's
// production choice) or by a dense-factored P1 FEM Laplacian on the same
// grid (the Fig 5 left / Table 2 baseline, overlap 0/1/3).
//
// The coarse component is a Q1 Laplacian on the spectral element vertex
// mesh, restricted/prolongated by bilinear interpolation at the Gauss
// points, and solved by any CoarseSolver backend (XXT by default).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/pressure.hpp"
#include "solver/coarse.hpp"
#include "solver/fdm.hpp"
#include "solver/overlap.hpp"
#include "solver/precision.hpp"

namespace tsem {

/// The per-element extended-subdomain FDM factorizations of the Schwarz
/// preconditioner, built standalone from the mesh (no PressureSystem
/// needed): identical grids and eigensolves to SchwarzPrecond's Fdm path
/// — SchwarzPrecond builds through this function — deduplicated by the
/// bitwise 1D-grid signature.  fdm_of[e] maps each element to its entry.
std::vector<FdmLocal> build_schwarz_fdm(const Mesh& m, int ng1, int overlap,
                                        std::vector<int>* fdm_of);

/// Element-local Schwarz FDM solves outside SchwarzPrecond: gather the
/// residual and ghost strips into the extended subdomain grid, solve by
/// fast diagonalization, scatter the own part into z and the ghost
/// returns into vout — per element, over an explicit element list.
///
/// This is the mp executed tier's fork-safe entry point (DESIGN.md
/// "Overlap protocol"): the sweep is SERIAL, and elems/blk follow the
/// element-list kernel convention of core/operators.hpp — elems[i] names
/// the mesh element (geometry), blk[i] its block in the field arrays
/// (nullptr: full-mesh layout).  Per-element arithmetic matches
/// SchwarzPrecond::apply's FP64 local pass expression for expression
/// (FdmLocal::solve is bitwise equal to the batched form), so a sweep
/// over all elements with the production ghost values reproduces the
/// preconditioner's local component bitwise — asserted in test_schwarz.
class SchwarzLocalSolver {
 public:
  SchwarzLocalSolver(const Mesh& m, int ng1, int overlap);

  /// Extended local dofs per element ((ng1 + 2*overlap)^dim).
  [[nodiscard]] std::size_t nle() const { return nle_; }
  /// Scratch doubles solve_elems needs (5 * nle: rloc, zloc, FDM work).
  [[nodiscard]] std::size_t work_doubles() const { return 5 * nle_; }
  [[nodiscard]] int overlap() const { return ov_; }

  /// Solve the listed elements.  r and z are pressure fields in blocks
  /// of ng1^dim; ghost and vout are layer-major with `nslots` slots per
  /// layer and 2*dim*ng1^(dim-1) slots per block (GhostExchange layout
  /// when blk is null, the rank-local DistGhost layout otherwise).
  /// z is accumulated (+=, disjoint blocks); the listed elements' vout
  /// slots are overwritten.  work must hold >= work_doubles().
  void solve_elems(const std::int32_t* elems, const std::int32_t* blk,
                   std::size_t nelems, const double* r, const double* ghost,
                   std::size_t nslots, double* z, double* vout,
                   double* work) const;

 private:
  int dim_, ng1_, ov_, m1_, nt_;
  std::size_t npe_, nle_;
  std::vector<FdmLocal> fdm_;
  std::vector<int> fdm_of_;
};

struct SetupBundle;  // solver/setup_bundle.hpp

struct SchwarzOptions {
  enum class Local { Fdm, FemP1 };
  Local local = Local::Fdm;
  /// Ghost layers. Fdm uses exactly 1 (the paper's one-point extension);
  /// FemP1 accepts 0 (block Jacobi), 1, or 3 as in Table 2.
  int overlap = 1;
  bool use_coarse = true;
  /// Nested-dissection levels for the XXT coarse solve (-1 = auto).
  int coarse_nlevels = -1;
  /// Arithmetic inside the local solves + ghost staging (DESIGN.md
  /// "Precision policy").  Defaults from TSEM_PRECOND_FP32.  Honored for
  /// the Fdm local only; FemP1 (dense FP64 Cholesky baseline) ignores it.
  /// The coarse solve and the outer Krylov iteration stay FP64 always.
  PrecondPrecision precision = precond_precision_from_env();
  /// Setup replay/record seams (DESIGN.md "Setup cache").  With
  /// setup_import set, the FDM eigendecompositions, the factored XXT
  /// coarse tree, and the overlap ghost-exchange pattern are restored
  /// from the bundle's sections instead of rebuilt (a section that is
  /// absent or fails structural validation
  /// falls back to the cold build — bitwise the same result).  With
  /// setup_record set, the built artifacts are serialized into the
  /// bundle for publication.  Both default off; non-owning pointers must
  /// outlive the constructor call only.
  const SetupBundle* setup_import = nullptr;
  SetupBundle* setup_record = nullptr;
};

class SchwarzPrecond {
 public:
  SchwarzPrecond(const PressureSystem& psys, SchwarzOptions opt);

  /// z = M^{-1} r on the pressure dofs.
  void apply(const double* r, double* z) const;

  [[nodiscard]] const SchwarzOptions& options() const { return opt_; }
  /// Effective precision of the local-solve path (Fp64 when the option
  /// asked for Fp32 but the local kind doesn't support it).
  [[nodiscard]] PrecondPrecision precision() const { return precision_; }
  /// Setup + per-apply flop counts for the local solves (Table 2 cpu
  /// accounting is done by wall clock in the bench; these support the
  /// machine model).
  [[nodiscard]] double local_flops_per_apply() const { return local_flops_; }
  [[nodiscard]] const CoarseSolver* coarse() const { return coarse_.get(); }
  /// The overlap ghost exchange behind apply() (nullptr when overlap = 0);
  /// each apply() runs one exchange() and one scatter_add(), i.e.
  /// 2 * overlap gather-scatter ops over the anchor ids.
  [[nodiscard]] const GhostExchange* ghost_exchange() const {
    return ghosts_.get();
  }

  /// Number of apply() calls that received a non-finite residual.  Such a
  /// residual would only smear NaN through every overlapped subdomain and
  /// the coarse solve, so the local solves are skipped and r is passed
  /// through unchanged — the CG driver's non-finite guard then classifies
  /// the solve as SolveStatus::NonFinite and the resilience layer takes
  /// over.  The counter lets StepStats attribute the fault to the
  /// preconditioner input rather than the operator.
  [[nodiscard]] long nonfinite_applies() const { return nonfinite_applies_; }
  void reset_fault_counters() const { nonfinite_applies_ = 0; }

 private:
  void build_local_grids();
  void build_coarse();
  // The gather/solve/scatter passes of apply(), shared between the FP64
  // and FP32 paths (T = double or float; defined in the .cpp).
  template <typename T>
  void gather_residual(const double* r, const T* ghost, T* batch_r) const;
  template <typename T>
  void scatter_solution(const T* batch_z, T* vout, double* z) const;

  const PressureSystem* psys_;
  SchwarzOptions opt_;
  int dim_, ng1_, m1_;  // m1 = extended 1D interior size ng1 + 2*overlap
  std::size_t nle_;     // local extended dofs per element
  std::unique_ptr<GhostExchange> ghosts_;

  // Local solvers.  FdmLocal factorizations are deduplicated by the
  // bitwise 1D grid signature (a uniform mesh collapses to ONE entry);
  // fdm_of_[e] maps an element to its factorization.  FemP1 Cholesky
  // factors stay per element.
  std::vector<FdmLocal> fdm_;             // unique factorizations
  std::vector<int> fdm_of_;               // element -> fdm_ index
  std::vector<std::vector<double>> fem_;  // per element Cholesky factors
  double local_flops_ = 0.0;

  // Batched local-solve layout, fixed at setup so apply() is identical
  // for every thread count: elements are permuted into slots grouped by
  // factorization, then cut into chunks of <= kBatch contiguous slots.
  // One FdmLocal::solve_batch call sweeps a chunk.
  static constexpr int kBatch = 16;
  struct Chunk {
    int local;  // fdm_ index (Fdm) — FemP1 solves per slot
    int slot0;  // first slot of the chunk
    int count;
  };
  std::vector<int> slot_of_;       // element -> slot
  std::vector<int> elem_of_slot_;  // slot -> element
  std::vector<Chunk> chunks_;
  mutable std::vector<double> batch_r_, batch_z_;  // nelem * nle_ each

  // Coarse data.
  std::unique_ptr<CoarseSolver> coarse_;
  std::vector<double> r0w_;  // (2^dim x npe) bilinear weights at Gauss pts
  mutable std::vector<double> cb_, cx_;

  mutable std::vector<double> ghost_, vout_;
  /// Per-thread FDM batch workspace (3 * kBatch * nle_ doubles per
  /// thread) for the OpenMP-parallel chunk-solve loop in apply().
  mutable Workspace lscratch_;
  mutable long nonfinite_applies_ = 0;

  // FP32 path (precision_ == Fp32): float twins of the batch staging,
  // ghost staging, and per-thread solve scratch.  Empty in FP64 mode.
  PrecondPrecision precision_ = PrecondPrecision::Fp64;
  mutable std::vector<float> batch_r32_, batch_z32_;
  mutable std::vector<float> ghost32_, vout32_;
  mutable Workspace lscratch32_;  // slabs reinterpreted as float
};

}  // namespace tsem
