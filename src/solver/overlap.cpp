#include "solver/overlap.hpp"

#include <array>

#include "common/check.hpp"
#include "mesh/point_numberer.hpp"
#include "poly/basis1d.hpp"
#include "tensor/mxm.hpp"
#include "tensor/tensor_apply.hpp"

namespace tsem {

GhostExchange::GhostExchange(const PressureSystem& psys, int nlayers)
    : GhostExchange(psys.vspace().mesh(), psys.ng1(), nlayers) {}

GhostExchange::GhostExchange(const Mesh& m, int ng1, int nlayers)
    : dim_(m.dim), ng1_(ng1), nlayers_(nlayers) {
  TSEM_REQUIRE(nlayers_ >= 1 && nlayers_ <= ng1_);
  const int n1 = m.n1d();
  nt_ = 1;
  for (int d = 1; d < dim_; ++d) nt_ *= ng1_;
  nslots_ = static_cast<std::size_t>(m.nelem) * 2 * dim_ * nt_;

  const auto& ig = gll_to_gauss(m.order, ng1_);  // ng1 x n1
  const double diag = m.bbox_diag();
  PointNumberer num(1e-5 * diag, 1e-8 * diag);
  std::vector<std::int64_t> ids(nslots_);

  // Workspaces for face-coordinate interpolation.
  std::vector<double> face_vals(static_cast<std::size_t>(n1) * n1);
  std::vector<double> anchor(static_cast<std::size_t>(nt_) * 3, 0.0);
  std::vector<double> work(static_cast<std::size_t>(ng1_) * n1 + nt_);

  const double* coords[3] = {m.x.data(), m.y.data(),
                             dim_ == 3 ? m.z.data() : nullptr};
  for (int e = 0; e < m.nelem; ++e) {
    const std::size_t off = static_cast<std::size_t>(e) * m.npe;
    for (int f = 0; f < 2 * dim_; ++f) {
      const int axis = f / 2;
      const int side = f % 2;
      for (int c = 0; c < dim_; ++c) {
        // Extract the face restriction of coordinate c on the GLL grid
        // (tangential axes ascending, lower axis fastest), then
        // interpolate to the Gauss tangential grid.
        if (dim_ == 2) {
          const int tax = 1 - axis;
          for (int q = 0; q < n1; ++q) {
            int ij[2];
            ij[axis] = side == 0 ? 0 : m.order;
            ij[tax] = q;
            face_vals[q] = coords[c][off + ij[1] * n1 + ij[0]];
          }
          // anchor_t = sum_q ig[t][q] face_vals[q]
          for (int t = 0; t < ng1_; ++t) {
            double s = 0.0;
            for (int q = 0; q < n1; ++q) s += ig[t * n1 + q] * face_vals[q];
            anchor[t * 3 + c] = s;
          }
        } else {
          int taxes[2], ti = 0;
          for (int d = 0; d < 3; ++d)
            if (d != axis) taxes[ti++] = d;
          for (int q2 = 0; q2 < n1; ++q2)
            for (int q1 = 0; q1 < n1; ++q1) {
              int ijk[3];
              ijk[axis] = side == 0 ? 0 : m.order;
              ijk[taxes[0]] = q1;
              ijk[taxes[1]] = q2;
              face_vals[q2 * n1 + q1] =
                  coords[c][off + (static_cast<std::size_t>(ijk[2]) * n1 +
                                   ijk[1]) * n1 + ijk[0]];
            }
          std::vector<double> out(static_cast<std::size_t>(ng1_) * ng1_);
          tensor2_apply(ig.data(), ng1_, n1, ig.data(), ng1_, n1,
                        face_vals.data(), out.data(), work.data());
          for (int t = 0; t < nt_; ++t) anchor[t * 3 + c] = out[t];
        }
      }
      const std::size_t base =
          (static_cast<std::size_t>(e) * 2 * dim_ + f) * nt_;
      for (int t = 0; t < nt_; ++t)
        ids[base + t] =
            num.id_of(anchor[t * 3 + 0], anchor[t * 3 + 1], anchor[t * 3 + 2]);
    }
  }
  gs_ = GatherScatter(ids);
  buf_.resize(nslots_);
  own_.resize(nslots_);
  buf32_.resize(nslots_);
  own32_.resize(nslots_);
}

CommProfile GhostExchange::comm_profile(const std::vector<int>& elem_rank,
                                        int nranks) const {
  return gs_comm_profile(gs_.dense_id(), 2 * dim_ * nt_, elem_rank, nranks);
}

void GhostExchange::serialize(ByteWriter& w) const {
  w.put<std::int32_t>(dim_);
  w.put<std::int32_t>(ng1_);
  w.put<std::int32_t>(nlayers_);
  gs_.serialize(w);
}

std::unique_ptr<GhostExchange> GhostExchange::deserialize(ByteReader& r,
                                                          const Mesh& m,
                                                          int ng1,
                                                          int nlayers) {
  std::int32_t dim = 0, sng1 = 0, snl = 0;
  if (!r.get(&dim) || !r.get(&sng1) || !r.get(&snl)) return nullptr;
  if (dim != m.dim || sng1 != ng1 || snl != nlayers) return nullptr;
  if (nlayers < 1 || nlayers > ng1) return nullptr;
  auto gx = std::unique_ptr<GhostExchange>(new GhostExchange());
  gx->dim_ = dim;
  gx->ng1_ = ng1;
  gx->nlayers_ = nlayers;
  gx->nt_ = 1;
  for (int d = 1; d < dim; ++d) gx->nt_ *= ng1;
  gx->nslots_ = static_cast<std::size_t>(m.nelem) * 2 * dim * gx->nt_;
  if (!gx->gs_.deserialize(r)) return nullptr;
  // The gather-scatter must cover exactly one anchor id per slot; a
  // shape mismatch (different mesh than the one serialized) shows up
  // here even though the ids themselves carry no coordinates.
  if (gx->gs_.nlocal() != gx->nslots_) return nullptr;
  gx->buf_.resize(gx->nslots_);
  gx->own_.resize(gx->nslots_);
  gx->buf32_.resize(gx->nslots_);
  gx->own32_.resize(gx->nslots_);
  return gx;
}

std::size_t GhostExchange::donor_node(std::size_t slot, int layer) const {
  const int t = static_cast<int>(slot % nt_);
  const int f = static_cast<int>((slot / nt_) % (2 * dim_));
  const std::size_t e = slot / (static_cast<std::size_t>(nt_) * 2 * dim_);
  const int axis = f / 2;
  const int side = f % 2;
  int idx[3] = {0, 0, 0};
  idx[axis] = side == 0 ? layer : ng1_ - 1 - layer;
  if (dim_ == 2) {
    idx[1 - axis] = t;
    return (e * ng1_ + idx[1]) * ng1_ + idx[0];
  }
  int taxes[2], ti = 0;
  for (int d = 0; d < 3; ++d)
    if (d != axis) taxes[ti++] = d;
  idx[taxes[0]] = t % ng1_;
  idx[taxes[1]] = t / ng1_;
  return ((e * ng1_ + idx[2]) * ng1_ + idx[1]) * ng1_ + idx[0];
}

void GhostExchange::exchange(const double* p, double* ghost) const {
  for (int l = 0; l < nlayers_; ++l) {
    for (std::size_t s = 0; s < nslots_; ++s) {
      own_[s] = p[donor_node(s, l)];
      buf_[s] = own_[s];
    }
    gs_.op(buf_.data());
    double* g = ghost + static_cast<std::size_t>(l) * nslots_;
    for (std::size_t s = 0; s < nslots_; ++s) g[s] = buf_[s] - own_[s];
  }
}

void GhostExchange::scatter_add(const double* v, double* p) const {
  for (int l = 0; l < nlayers_; ++l) {
    const double* g = v + static_cast<std::size_t>(l) * nslots_;
    for (std::size_t s = 0; s < nslots_; ++s) {
      own_[s] = g[s];
      buf_[s] = g[s];
    }
    gs_.op(buf_.data());
    for (std::size_t s = 0; s < nslots_; ++s)
      p[donor_node(s, l)] += buf_[s] - own_[s];
  }
}

void GhostExchange::exchange(const double* p, float* ghost) const {
  for (int l = 0; l < nlayers_; ++l) {
    for (std::size_t s = 0; s < nslots_; ++s) {
      own32_[s] = static_cast<float>(p[donor_node(s, l)]);
      buf32_[s] = own32_[s];
    }
    gs_.op_f32(buf32_.data());
    float* g = ghost + static_cast<std::size_t>(l) * nslots_;
    for (std::size_t s = 0; s < nslots_; ++s) g[s] = buf32_[s] - own32_[s];
  }
}

void GhostExchange::scatter_add(const float* v, double* p) const {
  for (int l = 0; l < nlayers_; ++l) {
    const float* g = v + static_cast<std::size_t>(l) * nslots_;
    for (std::size_t s = 0; s < nslots_; ++s) {
      own32_[s] = g[s];
      buf32_[s] = g[s];
    }
    gs_.op_f32(buf32_.data());
    // FP64 accumulate on restore: the float contributions are promoted
    // before touching the double field.
    for (std::size_t s = 0; s < nslots_; ++s)
      p[donor_node(s, l)] +=
          static_cast<double>(buf32_[s]) - static_cast<double>(own32_[s]);
  }
}

}  // namespace tsem
