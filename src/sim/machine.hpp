// Simulated distributed-memory machine (DESIGN.md "hardware
// substitution").
//
// A LogP-flavored alpha-beta-rate cost model calibrated to the 1999 Intel
// ASCI-Red system the paper benchmarks on: 333 MHz dual-Pentium-II nodes,
// NX/MPI messaging.  The *numerics* in this repository all run for real;
// this model only supplies the clock for the scaling studies (Fig 6,
// Fig 8, Table 4), driven by communication volumes and flop counts
// measured from the real algorithms.
#pragma once

#include <cstdint>

namespace tsem {

struct MachineParams {
  double alpha = 20e-6;        ///< message latency, seconds
  double beta = 8.0 / 310e6;   ///< seconds per 8-byte word (310 MB/s links)
  double flop_rate = 60e6;     ///< achieved per-node flop/s (std. kernels)
  const char* name = "machine";

  /// ASCI-Red-333 with the measured kernel tiers of Table 3/4:
  /// std: stock-library mxm rates; perf: best-of-table kernels;
  /// dual: two processors per node sharing one memory bus (the paper
  /// reports 82% dual-processor efficiency).
  static MachineParams asci_red(bool dual, bool perf);

  [[nodiscard]] double msg_time(std::int64_t words) const {
    return alpha + static_cast<double>(words) * beta;
  }
  [[nodiscard]] double compute_time(double flops) const {
    return flops / flop_rate;
  }
};

/// Time for an allgather of `words` total result words over P ranks
/// (recursive doubling: log2 P stages, (P-1)/P of the data moved).
double allgather_time(const MachineParams& m, int nranks, std::int64_t words);

/// Time for an allreduce of `words` words (recursive doubling).
double allreduce_time(const MachineParams& m, int nranks, std::int64_t words);

/// Contention-free binary-tree fan-in + fan-out with per-level message
/// sizes msg[l] (l = 0 at the root), the XXT solve schedule.
double tree_fan_time(const MachineParams& m, const std::int64_t* level_words,
                     int nlevels);

/// The paper's Fig 6 lower-bound curve: latency * 2 log2 P.
double latency_bound(const MachineParams& m, int nranks);

}  // namespace tsem
