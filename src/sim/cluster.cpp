#include "sim/cluster.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "fem/fem.hpp"
#include "mesh/mesh.hpp"
#include "partition/rsb.hpp"
#include "solver/coarse.hpp"

namespace tsem {
namespace {

int log2_exact(int v) {
  TSEM_REQUIRE(v >= 1 && (v & (v - 1)) == 0);
  int l = 0;
  while ((1 << l) < v) ++l;
  return l;
}

}  // namespace

double gs_op_time(const MachineParams& m, const CommProfile& p) {
  double t = 0.0;
  for (int r = 0; r < p.nranks; ++r)
    t = std::max(t, static_cast<double>(p.neighbors[r]) * m.alpha +
                        static_cast<double>(p.send_words[r]) * m.beta);
  return t;
}

PhaseTimes cluster_step_time(const RankSchedule& s, const MachineParams& m,
                             const StepShape& shape) {
  TSEM_REQUIRE(s.nelem > 0);
  PhaseTimes t;
  t.compute = m.compute_time(shape.flops * s.max_rank_elems / s.nelem);
  t.gs = shape.gs_ops * gs_op_time(m, s.gs) +
         static_cast<double>(shape.schwarz_applies) * s.schwarz_gs_per_apply *
             gs_op_time(m, s.schwarz);
  t.allreduce = shape.allreduces * allreduce_time(m, s.nranks, 1);
  if (shape.coarse_solves > 0 && !s.xxt_level_words.empty()) {
    const double per_solve =
        tree_fan_time(m, s.xxt_level_words.data(),
                      static_cast<int>(s.xxt_level_words.size())) +
        m.compute_time(4.0 * static_cast<double>(s.xxt_max_rank_nnz));
    t.coarse = shape.coarse_solves * per_solve;
  } else if (shape.coarse_solves > 0) {
    // Single-rank machine: the coarse solve is pure local work.
    t.coarse = shape.coarse_solves *
               m.compute_time(4.0 * static_cast<double>(s.xxt_max_rank_nnz));
  }
  return t;
}

ClusterSim::ClusterSim(const Mesh& mesh, ClusterOptions opt)
    : opt_(opt), nelem_(mesh.nelem), npe_(mesh.npe) {
  levels_ = log2_exact(opt_.max_ranks);
  TSEM_REQUIRE(opt_.max_ranks <= nelem_);
  part_ = recursive_spectral_bisection(mesh, opt_.max_ranks);
  node_id_ = mesh.node_id;

  if (opt_.build_schwarz) {
    const int ng1 = opt_.schwarz_ng1 > 0 ? opt_.schwarz_ng1 : mesh.order - 1;
    TSEM_REQUIRE(ng1 >= 1 && opt_.schwarz_overlap >= 1);
    ghosts_ = std::make_unique<GhostExchange>(mesh, ng1, opt_.schwarz_overlap);
  }

  if (opt_.build_coarse) {
    // The real coarse operator and its real factorization: A0 is the Q1
    // Laplacian on the spectral element vertex mesh, pinned at dof 0 (pure
    // Neumann otherwise), dissected to one leaf subtree per max_ranks rank.
    const CsrMatrix a0 = pin_dof(q1_vertex_laplacian(mesh), 0);
    TSEM_REQUIRE((1 << levels_) <= a0.n());
    std::vector<double> vx, vy, vz;
    vertex_coords(mesh, vx, vy, vz);
    const NestedDissection nd = nested_dissection(a0, vx, vy, vz, levels_);
    xxt_ = std::make_unique<XxtSolver>(a0, nd);
  }
}

ClusterSim::~ClusterSim() = default;

RankSchedule ClusterSim::schedule(int nranks) const {
  const int l = log2_exact(nranks);
  TSEM_REQUIRE(l <= levels_);
  const int shift = levels_ - l;

  RankSchedule s;
  s.nranks = nranks;
  s.nelem = nelem_;
  s.elem_rank.resize(nelem_);
  std::vector<int> counts(nranks, 0);
  for (int e = 0; e < nelem_; ++e) {
    s.elem_rank[e] = part_[e] >> shift;
    ++counts[s.elem_rank[e]];
  }
  s.max_rank_elems = *std::max_element(counts.begin(), counts.end());

  s.gs = gs_comm_profile(node_id_, npe_, s.elem_rank, nranks);
  if (ghosts_) {
    s.schwarz = ghosts_->comm_profile(s.elem_rank, nranks);
    s.schwarz_gs_per_apply = 2 * ghosts_->nlayers();
  }
  if (xxt_) {
    s.xxt_level_words = xxt_->level_msg_words_at(l);
    s.xxt_max_rank_nnz = xxt_->max_rank_nnz(l);
    s.coarse_n = xxt_->n();
  }
  return s;
}

}  // namespace tsem
