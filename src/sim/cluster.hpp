// Simulated multi-rank cluster with *measured* communication schedules
// (paper §6; DESIGN.md "measured vs modeled").
//
// ClusterSim decomposes a real mesh over P simulated ranks with the
// production recursive spectral bisection, then derives, per rank count,
// the exact exchange lists a message-passing execution would run:
//   * gather-scatter pairwise exchanges of the C0 assembly (gs_comm_profile
//     over the mesh's global node ids),
//   * Schwarz ghost-layer exchange volumes (the preconditioner's anchor-id
//     gather-scatter under the same partition),
//   * the XXT coarse solve's per-level fan-in/fan-out message sizes,
//     measured from the actual factored tree,
//   * scalar allreduce counts per PCG iteration (cg.hpp's documented dot
//     schedule).
// cluster_step_time feeds those schedules to the MachineParams cost model
// to produce a per-step time with a gs / allreduce / coarse / compute
// breakdown.  One RSB call at max_ranks yields the entire partition
// hierarchy: the top-down bit assignment of rsb.cpp means the partition
// for 2^l ranks is the max_ranks partition shifted right by the level
// difference, so every coarser machine reuses the same element placement
// refined consistently.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gs/gather_scatter.hpp"
#include "sim/machine.hpp"
#include "solver/overlap.hpp"
#include "solver/xxt.hpp"

namespace tsem {

class Mesh;

struct ClusterOptions {
  /// Largest simulated machine (power of two, <= nelem); schedules are
  /// available for every power-of-two P up to this.
  int max_ranks = 256;
  /// Schwarz ghost layers (the paper's production overlap is 1).
  int schwarz_overlap = 1;
  /// Gauss grid size for the Schwarz exchange (-1 = pressure grid, N-1).
  int schwarz_ng1 = -1;
  bool build_schwarz = true;
  /// Build the Q1 vertex Laplacian A0 and its XXT factorization so
  /// schedules carry the measured coarse-solve tree (required for the
  /// coarse phase of cluster_step_time).
  bool build_coarse = true;
};

/// Everything measured about one rank count: the exchange lists and tree
/// schedule a P-rank execution of the real data structures would run.
struct RankSchedule {
  int nranks = 0;
  int nelem = 0;
  /// Elements on the fullest rank (compute is billed at this rank's load).
  int max_rank_elems = 0;
  /// elem -> rank under the RSB hierarchy at this P.
  std::vector<int> elem_rank;
  /// Pairwise exchange profile of one C0-assembly gs op (mesh node ids).
  CommProfile gs;
  /// Pairwise exchange profile of one Schwarz ghost-layer gs op (empty
  /// when the engine was built without Schwarz).
  CommProfile schwarz;
  /// Anchor gs ops per Schwarz apply: exchange + scatter_add, one op per
  /// ghost layer each (= 2 * overlap).
  int schwarz_gs_per_apply = 0;
  /// Measured XXT fan-in words per tree level at this P (empty without
  /// the coarse solver); tree_fan_time bills fan-in + mirroring fan-out.
  std::vector<std::int64_t> xxt_level_words;
  /// Max over ranks of owned X nonzeros (local coarse mat-vec work per
  /// solve = 4 * this).
  std::int64_t xxt_max_rank_nnz = 0;
  /// Coarse problem size (A0 dofs), 0 without the coarse solver.
  int coarse_n = 0;
};

/// What one time step executes, counted by the caller from the real
/// solver configuration (iteration counts, dot schedules, flop totals).
struct StepShape {
  /// Total flops per step over the whole mesh (billed at the fullest
  /// rank's share: flops * max_rank_elems / nelem).
  double flops = 0.0;
  /// C0-assembly gs ops per step (operator applies in all solves).
  int gs_ops = 0;
  /// Scalar allreduces per step (PCG dots; see kPcgSetupDots /
  /// kPcgDotsPerIteration in solver/cg.hpp).
  int allreduces = 0;
  /// Schwarz preconditioner applications per step.
  int schwarz_applies = 0;
  /// XXT coarse solves per step (= schwarz_applies with coarse on).
  int coarse_solves = 0;
};

/// Per-phase simulated seconds for one step.
struct PhaseTimes {
  double compute = 0.0;
  double gs = 0.0;
  double allreduce = 0.0;
  double coarse = 0.0;
  [[nodiscard]] double total() const {
    return compute + gs + allreduce + coarse;
  }
};

/// Critical-path time of one gs op under a measured profile: the busiest
/// rank posts one message per neighbor and its full interface volume.
double gs_op_time(const MachineParams& m, const CommProfile& p);

/// Bill a step shape against a measured schedule on machine m.
PhaseTimes cluster_step_time(const RankSchedule& s, const MachineParams& m,
                             const StepShape& shape);

class ClusterSim {
 public:
  /// Partitions the mesh (one RSB call at opt.max_ranks), builds the
  /// Schwarz ghost exchange and the real XXT factorization of the Q1
  /// vertex Laplacian.  Copies what it needs; the mesh may be freed.
  ClusterSim(const Mesh& mesh, ClusterOptions opt);
  ~ClusterSim();

  /// Measured schedule for a 2^l-rank machine, nranks <= max_ranks.
  [[nodiscard]] RankSchedule schedule(int nranks) const;

  [[nodiscard]] int max_ranks() const { return opt_.max_ranks; }
  [[nodiscard]] int nelem() const { return nelem_; }
  /// The max_ranks RSB partition the hierarchy is derived from.
  [[nodiscard]] const std::vector<int>& partition() const { return part_; }
  /// The real coarse factorization (nullptr without build_coarse).
  [[nodiscard]] const XxtSolver* xxt() const { return xxt_.get(); }
  /// The real ghost exchange (nullptr without build_schwarz).
  [[nodiscard]] const GhostExchange* ghost_exchange() const {
    return ghosts_.get();
  }

 private:
  ClusterOptions opt_;
  int nelem_ = 0;
  int npe_ = 0;
  int levels_ = 0;  // log2(max_ranks)
  std::vector<int> part_;
  std::vector<std::int64_t> node_id_;
  std::unique_ptr<GhostExchange> ghosts_;
  std::unique_ptr<XxtSolver> xxt_;
};

}  // namespace tsem
