#include "sim/machine.hpp"

#include <cmath>

namespace tsem {

MachineParams MachineParams::asci_red(bool dual, bool perf) {
  MachineParams m;
  // Effective user-level MPI latency on ASCI-Red; chosen so the
  // latency*2logP lower-bound curve matches the paper's Fig 6 (~1 ms at
  // P = 2048).
  m.alpha = 50e-6;
  m.beta = 8.0 / 310e6;
  // Per-node sustained flop rates consistent with the paper's Table 4:
  // 319 GF / 2048 nodes ~ 156 MF/node dual perf.; 183 GF -> ~90 MF/node
  // single std.  Dual-processor mode gains 1.64x (82% efficiency of 2x).
  m.flop_rate = perf ? 95e6 : 90e6;
  if (dual) m.flop_rate *= perf ? 1.64 : 1.46;
  m.name = dual ? (perf ? "asci-red dual perf." : "asci-red dual std.")
                : (perf ? "asci-red single perf." : "asci-red single std.");
  return m;
}

namespace {

int log2_ceil(int p) {
  int l = 0;
  while ((1 << l) < p) ++l;
  return l;
}

}  // namespace

double allgather_time(const MachineParams& m, int nranks,
                      std::int64_t words) {
  if (nranks <= 1) return 0.0;
  // The paper bills the gather-the-full-vector alternatives at an
  // n log2 P communication cost (typical of 1999-era allgathers on mesh
  // networks, where contention defeats the recursive-doubling volume
  // optimum).  kContention is the bisection-contention factor of the
  // ASCI-Red 38x32x2 mesh for machine-wide collectives, calibrated so the
  // distributed-A^{-1} curve matches the paper's Fig 6 (~2e-2 s at
  // n = 16129, P = 2048).
  constexpr double kContention = 4.0;
  const int stages = log2_ceil(nranks);
  return stages *
         (m.alpha + kContention * static_cast<double>(words) * m.beta);
}

double allreduce_time(const MachineParams& m, int nranks,
                      std::int64_t words) {
  if (nranks <= 1) return 0.0;
  const int stages = log2_ceil(nranks);
  return stages * (m.alpha + static_cast<double>(words) * m.beta);
}

double tree_fan_time(const MachineParams& m, const std::int64_t* level_words,
                     int nlevels) {
  double t = 0.0;
  for (int l = 0; l < nlevels; ++l) t += m.msg_time(level_words[l]);
  return 2.0 * t;  // fan-in + fan-out
}

double latency_bound(const MachineParams& m, int nranks) {
  if (nranks <= 1) return 0.0;
  return m.alpha * 2.0 * log2_ceil(nranks);
}

}  // namespace tsem
