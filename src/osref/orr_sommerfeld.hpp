// Orr-Sommerfeld reference solver (DESIGN.md substitution for the
// "linear theory" growth rates Table 1 compares against).
//
// Chebyshev collocation of the Orr-Sommerfeld equation for plane
// Poiseuille flow U(y) = 1 - y^2:
//   (1/(i alpha Re)) (D^2-a^2)^2 v = (U - c)(D^2-a^2) v - U'' v,
// with clamped boundary conditions v(+-1) = v'(+-1) = 0, solved by
// shift-inverted Rayleigh-quotient iteration for the eigenvalue c nearest
// an initial guess.  The temporal growth rate of a TS wave of
// streamwise wavenumber alpha is omega_i = alpha * Im(c).
#pragma once

#include <complex>
#include <vector>

namespace tsem {

struct OrrSommerfeldResult {
  std::complex<double> c;  ///< complex phase speed
  double alpha = 0.0;
  double re = 0.0;
  bool converged = false;
  std::vector<double> y;                 ///< Chebyshev points, 1 .. -1
  std::vector<std::complex<double>> v;   ///< wall-normal eigenfunction
  std::vector<std::complex<double>> u;   ///< streamwise: (i/alpha) v'
  /// Temporal growth rate alpha * Im(c) of the perturbation amplitude.
  [[nodiscard]] double growth_rate() const { return alpha * c.imag(); }
};

/// npts: Chebyshev points (>= 64 recommended); guess: initial eigenvalue
/// estimate (e.g. 0.25 + 0.0025i for the Re = 7500, alpha = 1 TS mode).
OrrSommerfeldResult solve_orr_sommerfeld(double re, double alpha, int npts,
                                         std::complex<double> guess);

/// Barycentric evaluation of a (complex) Chebyshev-grid function at y.
std::complex<double> chebyshev_eval(const std::vector<double>& ygrid,
                                    const std::vector<std::complex<double>>& f,
                                    double y);

}  // namespace tsem
