#include "osref/orr_sommerfeld.hpp"

#include <cmath>

#include "common/check.hpp"
#include "tensor/linalg.hpp"

namespace tsem {
namespace {

using C = std::complex<double>;

// Trefethen's Chebyshev differentiation matrix on x_j = cos(j pi / n).
void cheb(int n, std::vector<double>& x, std::vector<double>& d) {
  const int np = n + 1;
  x.resize(np);
  for (int j = 0; j <= n; ++j) x[j] = std::cos(M_PI * j / n);
  d.assign(static_cast<std::size_t>(np) * np, 0.0);
  auto cw = [n](int i) { return (i == 0 || i == n) ? 2.0 : 1.0; };
  for (int i = 0; i <= n; ++i) {
    double rowsum = 0.0;
    for (int j = 0; j <= n; ++j) {
      if (i == j) continue;
      const double sign = ((i + j) % 2 == 0) ? 1.0 : -1.0;
      const double v = (cw(i) / cw(j)) * sign / (x[i] - x[j]);
      d[i * np + j] = v;
      rowsum += v;
    }
    d[i * np + i] = -rowsum;
  }
}

}  // namespace

OrrSommerfeldResult solve_orr_sommerfeld(double re, double alpha, int npts,
                                         C guess) {
  TSEM_REQUIRE(npts >= 16);
  const int n = npts - 1;
  const int np = npts;
  std::vector<double> x, d;
  cheb(n, x, d);

  // D2 = D*D, D4 = D2*D2 (real).
  std::vector<double> d2(static_cast<std::size_t>(np) * np, 0.0);
  for (int i = 0; i < np; ++i)
    for (int k = 0; k < np; ++k) {
      const double dik = d[i * np + k];
      if (dik == 0.0) continue;
      for (int j = 0; j < np; ++j) d2[i * np + j] += dik * d[k * np + j];
    }
  std::vector<double> d4(static_cast<std::size_t>(np) * np, 0.0);
  for (int i = 0; i < np; ++i)
    for (int k = 0; k < np; ++k) {
      const double v = d2[i * np + k];
      if (v == 0.0) continue;
      for (int j = 0; j < np; ++j) d4[i * np + j] += v * d2[k * np + j];
    }

  const double a2 = alpha * alpha;
  // L = D2 - a^2 I; L2 = (D2 - a^2)^2 = D4 - 2 a^2 D2 + a^4 I.
  std::vector<C> amat(static_cast<std::size_t>(np) * np);
  std::vector<C> bmat(static_cast<std::size_t>(np) * np);
  const C ia(0.0, alpha);
  for (int i = 0; i < np; ++i) {
    const double u = 1.0 - x[i] * x[i];  // U(y)
    const double upp = -2.0;             // U''
    for (int j = 0; j < np; ++j) {
      const double l = d2[i * np + j] - (i == j ? a2 : 0.0);
      const double l2 = d4[i * np + j] - 2.0 * a2 * d2[i * np + j] +
                        (i == j ? a2 * a2 : 0.0);
      amat[i * np + j] = u * l - (i == j ? upp : 0.0) - l2 / (ia * re);
      bmat[i * np + j] = l;
    }
  }
  // Clamped BCs: v(+-1) = 0 on rows 0, n; v'(+-1) = 0 on rows 1, n-1.
  for (int j = 0; j < np; ++j) {
    amat[0 * np + j] = (j == 0) ? 1.0 : 0.0;
    amat[n * np + j] = (j == n) ? 1.0 : 0.0;
    amat[1 * np + j] = d[0 * np + j];
    amat[(n - 1) * np + j] = d[n * np + j];
    bmat[0 * np + j] = bmat[n * np + j] = 0.0;
    bmat[1 * np + j] = bmat[(n - 1) * np + j] = 0.0;
  }

  OrrSommerfeldResult res;
  res.alpha = alpha;
  res.re = re;
  res.y = x;

  // Shift-inverted Rayleigh iteration.
  C sigma = guess;
  std::vector<C> v(np);
  for (int i = 0; i < np; ++i) v[i] = std::sin(M_PI * 0.5 * (1.0 + x[i]));
  v[0] = v[n] = 0.0;
  std::vector<C> m(static_cast<std::size_t>(np) * np), bv(np), w(np);
  std::vector<int> piv(np);
  C lambda = sigma;
  for (int it = 0; it < 60; ++it) {
    for (std::size_t k = 0; k < m.size(); ++k)
      m[k] = amat[k] - sigma * bmat[k];
    if (!zlu_factor(m.data(), np, piv.data())) {
      // Exactly singular shift: sigma IS the eigenvalue.
      res.converged = it > 0;
      lambda = sigma;
      break;
    }
    // w = (A - sigma B)^{-1} B v
    for (int i = 0; i < np; ++i) {
      C s = 0.0;
      for (int j = 0; j < np; ++j) s += bmat[i * np + j] * v[j];
      bv[i] = s;
    }
    w = bv;
    zlu_solve(m.data(), piv.data(), np, w.data());
    // mu = (v, w)/(v, v): lambda = sigma + 1/mu.
    C num = 0.0, den = 0.0;
    for (int i = 0; i < np; ++i) {
      num += std::conj(v[i]) * w[i];
      den += std::conj(v[i]) * v[i];
    }
    const C mu = num / den;
    if (std::abs(mu) > 1e10) {
      // Shift is numerically the eigenvalue; the solve amplified by 1/eps.
      res.converged = true;
      lambda = sigma;
      double nn = 0.0;
      for (int i = 0; i < np; ++i) nn += std::norm(w[i]);
      nn = std::sqrt(nn);
      for (int i = 0; i < np; ++i) v[i] = w[i] / nn;
      break;
    }
    const C lambda_new = sigma + 1.0 / mu;
    double nrm = 0.0;
    for (int i = 0; i < np; ++i) nrm += std::norm(w[i]);
    nrm = std::sqrt(nrm);
    for (int i = 0; i < np; ++i) v[i] = w[i] / nrm;
    if (std::abs(lambda_new - lambda) < 1e-11 * std::abs(lambda_new)) {
      lambda = lambda_new;
      res.converged = true;
      break;
    }
    lambda = lambda_new;
    if (it >= 2) sigma = lambda;  // Rayleigh update after stabilization
  }
  res.c = lambda;
  res.v = v;
  // u = (i/alpha) dv/dy.
  res.u.assign(np, C(0.0, 0.0));
  for (int i = 0; i < np; ++i) {
    C s = 0.0;
    for (int j = 0; j < np; ++j) s += d[i * np + j] * v[j];
    res.u[i] = C(0.0, 1.0) / alpha * s;
  }
  return res;
}

std::complex<double> chebyshev_eval(
    const std::vector<double>& ygrid,
    const std::vector<std::complex<double>>& f, double y) {
  const int np = static_cast<int>(ygrid.size());
  const int n = np - 1;
  // Barycentric weights for Chebyshev points: (-1)^j, halved at ends.
  C num(0.0, 0.0);
  double den = 0.0;
  C numc(0.0, 0.0);
  std::complex<double> result(0.0, 0.0);
  double denr = 0.0;
  bool hit = false;
  for (int j = 0; j <= n; ++j) {
    const double dy = y - ygrid[j];
    if (std::fabs(dy) < 1e-14) {
      result = f[j];
      hit = true;
      break;
    }
    double wj = (j % 2 == 0) ? 1.0 : -1.0;
    if (j == 0 || j == n) wj *= 0.5;
    const double r = wj / dy;
    numc += r * f[j];
    denr += r;
  }
  (void)num;
  (void)den;
  if (!hit) result = numc / denr;
  return result;
}

}  // namespace tsem
