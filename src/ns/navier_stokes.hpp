// Unsteady incompressible Navier-Stokes integrator (paper §4).
//
// Semi-discrete form (P_N x P_{N-2}):
//     B du/dt = -B (u.grad)u - nu A u + D^T p + B f,    D u = 0
// advanced by a BDF operator-splitting scheme:
//   * the convective term is treated either by OIFS sub-integration
//     (characteristics: the paper's production scheme, allowing
//     convective CFL 1-5) or by explicit extrapolation (EXTk);
//   * each velocity component solves a Jacobi-PCG Helmholtz system
//     H = (beta0/dt) B + nu A;
//   * the pressure correction solves E dp = -(beta0/dt) D u* with
//     Schwarz-preconditioned PCG accelerated by projection onto previous
//     solutions;
//   * the Fischer-Mullen filter F_alpha is applied once per step.
//
// An optional advected-diffused scalar (temperature) with its own
// boundary conditions supports the Boussinesq convection applications.
//
// Every solve reports a SolveStatus, and step() wraps the whole update in
// the resilience layer's deterministic escalation ladder (see
// resilience/recovery.hpp): a hard-failed solve rolls the state back and
// retries with zero guesses and a flushed projection basis, then with a
// diagonal preconditioner fallback, then at halved dt with the BDF/OIFS
// ramp restarted — all recorded in StepStats.  Full solver state can be
// exported/imported bit-exactly for checkpoint/restart
// (resilience/checkpoint.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/dealias.hpp"
#include "core/helmholtz.hpp"
#include "core/pressure.hpp"
#include "core/space.hpp"
#include "resilience/recovery.hpp"
#include "solver/cg.hpp"
#include "solver/projection.hpp"
#include "solver/schwarz.hpp"

namespace tsem {

struct NsOptions {
  double dt = 1e-3;
  double viscosity = 1e-3;  ///< nu = 1/Re
  int torder = 2;           ///< BDF order (1-3); ramps up from 1 at start
  double filter_alpha = 0.0;
  enum class Convection { Oifs, Ext };
  Convection convection = Convection::Oifs;
  int oifs_substeps = 0;  ///< 0 = auto from the current CFL (target ~0.5)
  /// Over-integrate the convective term on a 3/2-rule fine Gauss grid
  /// (OIFS mode only) — removes the aliasing error of the collocation
  /// form (see core/dealias.hpp).
  bool dealias = false;
  /// Solver tolerances.  helm_tol is relative to the initial residual;
  /// pres_tol is relative to the FULL rhs norm each step (not the
  /// projection-reduced residual), so projection genuinely saves
  /// iterations, matching the paper's usage.
  double helm_tol = 1e-9;
  double pres_tol = 1e-6;
  int max_iter = 4000;
  int proj_len = 8;  ///< projection window L (0 disables)
  bool use_schwarz = true;
  SchwarzOptions schwarz;
  /// Remove the pressure nullspace (enclosed / fully periodic flows).
  bool pressure_mean_free = true;
  /// Setup replay/record (DESIGN.md "Setup cache").  Forwarded into the
  /// SchwarzOptions seams and applied to the dealiasing operator here:
  /// with setup_import, the fdm/xxt/dealias sections replace the cold
  /// builds (falling back per section on validation failure); with
  /// setup_record, built artifacts are serialized into the bundle.
  /// Non-owning; must outlive the NavierStokes constructor call only.
  const SetupBundle* setup_import = nullptr;
  SetupBundle* setup_record = nullptr;
  /// Failure recovery policy (see resilience/recovery.hpp).
  ResilienceOptions resilience;
};

struct StepStats {
  int step = 0;
  double time = 0.0;
  int pressure_iters = 0;
  std::array<int, 3> helmholtz_iters{0, 0, 0};
  double pressure_res0 = 0.0;  ///< residual before iteration (after proj)
  double divergence = 0.0;     ///< ||D u^n||_2 after correction
  double cfl = 0.0;
  double flops = 0.0;  ///< modeled flops spent this step

  // --- resilience record (escalation ladder, resilience/recovery.hpp) ---
  double dt = 0.0;  ///< dt actually used (== NsOptions::dt unless rejected)
  SolveStatus pressure_status = SolveStatus::Converged;
  std::array<SolveStatus, 3> helmholtz_status{
      SolveStatus::Converged, SolveStatus::Converged, SolveStatus::Converged};
  SolveStatus scalar_status = SolveStatus::Converged;  ///< worst over scalars
  int attempts = 1;       ///< total attempts including the accepted one
  int dt_halvings = 0;    ///< rejections taken (watchdog + solver-driven)
  bool cfl_rejected = false;       ///< watchdog halved dt preemptively
  bool projection_flushed = false; ///< rung 1 taken (zero guess + flush)
  bool precond_fallback = false;   ///< rung 2 taken (Schwarz -> diagonal)
  bool nonfinite_field = false;    ///< post-step field scan found NaN/Inf
  bool recovered = false;  ///< accepted after at least one failed attempt
  bool failed = false;     ///< ladder exhausted; state rolled back
};

/// Where a registered fault hook is invoked (deterministic test seam for
/// the resilience layer; see resilience/fault_injector.hpp).
enum class FaultSite {
  HelmholtzRhs,  ///< weak rhs of velocity component `component`
  PressureRhs,   ///< pressure Poisson rhs g
};

/// Bit-exact exportable solver state (resilience/checkpoint.hpp).
struct NsState {
  std::int32_t dim = 0;
  std::int32_t nscalars = 0;
  std::uint64_t nlocal = 0;
  std::uint64_t npressure = 0;
  std::int32_t step = 0;
  std::int32_t order_ramp = 0;
  std::int32_t bc_frozen = 0;
  double time = 0.0;
  double dt = 0.0;
  double flops_total = 0.0;
  std::array<std::vector<double>, 3> u, ubc;
  std::array<std::array<std::vector<double>, 3>, 3> uh, ch;
  std::vector<double> p;
  struct Scalar {
    std::vector<double> th, thbc;
    std::array<std::vector<double>, 3> hist;
  };
  std::vector<Scalar> scalars;
  std::vector<std::vector<double>> proj_q, proj_w;
};

class NavierStokes {
 public:
  /// dirichlet_tags: boundary tag bits where ALL velocity components are
  /// Dirichlet (per-component masks can be overridden with set_mask).
  NavierStokes(const Space& space, std::uint32_t dirichlet_tags,
               NsOptions opt);
  ~NavierStokes();  // out-of-line: ScalarData is incomplete here

  [[nodiscard]] const Space& space() const { return *space_; }
  [[nodiscard]] const NsOptions& options() const { return opt_; }
  [[nodiscard]] int dim() const { return dim_; }
  [[nodiscard]] double time() const { return time_; }

  /// Velocity component c (element-by-element storage); set initial
  /// conditions here before the first step.  Boundary values are frozen
  /// from this field at the first step() (time-independent BCs).
  std::vector<double>& u(int c) { return u_[c]; }
  [[nodiscard]] const std::vector<double>& u(int c) const { return u_[c]; }
  std::vector<double>& pressure() { return p_; }
  [[nodiscard]] const PressureSystem& pressure_system() const {
    return *psys_;
  }

  /// Nodal body force, called once per step; add into f[c].
  using Forcing = std::function<void(const NavierStokes&, double t,
                                     const std::array<double*, 3>& f)>;
  void set_forcing(Forcing f) { forcing_ = std::move(f); }

  /// Optional advected-diffused scalars (temperature, species, ...):
  /// the paper's "multiple-species transport" support.  Returns the
  /// index of the new scalar.
  int add_scalar(std::uint32_t dirichlet_tags, double diffusivity);
  [[nodiscard]] int nscalars() const {
    return static_cast<int>(scalars_.size());
  }
  [[nodiscard]] bool has_scalar() const { return !scalars_.empty(); }
  std::vector<double>& scalar(int which = 0);
  [[nodiscard]] const std::vector<double>& scalar(int which = 0) const;

  /// Advance one time step through the resilience ladder.
  StepStats step();

  /// Deterministic fault-injection seam: invoked on each solve rhs right
  /// before the solve, every attempt.  `step` is the 1-based index of the
  /// step being computed, `attempt` the 1-based ladder attempt,
  /// `component` the velocity component (HelmholtzRhs only).  Used by the
  /// resilience tests; pass nullptr to clear.
  using FaultHook = std::function<void(FaultSite site, int step, int attempt,
                                       int component, double* data,
                                       std::size_t n)>;
  void set_fault_hook(FaultHook h) { fault_hook_ = std::move(h); }

  /// Snapshot the complete time-stepping state (fields, histories,
  /// pressure, scalars, projection basis, clock) for checkpointing.
  [[nodiscard]] NsState export_state() const;
  /// Restore a previously exported state.  The target must be built on
  /// the same discretization (dim/sizes/scalar count); on mismatch
  /// returns false with *err describing the offending field and leaves
  /// the object untouched.  NsOptions::dt is overwritten by the state's
  /// dt so the restored run continues on the same clock.
  bool import_state(const NsState& s, std::string* err = nullptr);

  /// CRC-32 digest over the complete exportable state (fields, histories,
  /// pressure, scalars, projection basis, clock).  Two solvers report the
  /// same digest iff their continued runs are bit-identical — the fleet
  /// layer (src/fleet/) uses this to prove a checkpoint-resumed job ended
  /// in exactly the state of an uninterrupted run.
  [[nodiscard]] std::uint32_t state_digest() const;

  /// max_q |u . grad| based convective CFL of the current field.
  [[nodiscard]] double current_cfl() const;
  /// ||D u||_2 of the current velocity.
  [[nodiscard]] double divergence_norm() const;
  /// Volume-integrated kinetic energy of (u - uref), uref optional.
  [[nodiscard]] double kinetic_energy(
      const std::array<const double*, 3>& uref = {nullptr, nullptr,
                                                  nullptr}) const;

  /// Cumulative modeled flop count (see DESIGN.md performance model).
  [[nodiscard]] double total_flops() const { return flops_total_; }

 private:
  struct ScalarData;
  struct Snapshot;
  struct StepScratch;
  /// Per-attempt solve policy chosen by the escalation ladder.
  struct AttemptPolicy {
    bool zero_guess = false;   ///< rung 1: cold-start every solve
    bool use_schwarz = true;   ///< rung 2 clears this: diagonal fallback
  };

  void compute_bdf_coeffs(int order, double* beta0, double* c) const;
  /// max |u . grad| rate of the current field; CFL = rate * dt.
  [[nodiscard]] double cfl_rate() const;
  /// Advect `fields` (in place) from t^{n-q} to t^n by RK4 sub-stepping
  /// of the pure convection problem, with the advecting velocity
  /// interpolated/extrapolated from the known history.
  void oifs_advect(double dt, int q, int order, int substeps,
                   const std::vector<std::vector<double>*>& fields,
                   const std::vector<const double*>& field_masks);
  /// One full step attempt at the given dt/order under the given policy.
  /// Returns false (without advancing the clock) on a hard solve failure
  /// or a non-finite post-step field; statuses are recorded in stats.
  bool attempt_step(double dt, int order, const AttemptPolicy& pol,
                    int attempt, StepStats& stats);
  [[nodiscard]] bool solve_failed(SolveStatus s) const;
  void apply_velocity_filter();
  void save_snapshot(Snapshot& s) const;
  void restore_snapshot(const Snapshot& s);
  /// Size the persistent step scratch (StepScratch, snapshot, solver
  /// buffers) for the current field/scalar layout.  Called at the top of
  /// every attempt; a no-op once everything is at full size, so steps are
  /// allocation-free in steady state.
  void ensure_scratch();

  const Space* space_;
  NsOptions opt_;
  int dim_;
  std::size_t nl_;
  double time_ = 0.0;
  int nsteps_ = 0;
  /// Consecutive accepted steps at the nominal dt since the last dt
  /// rejection (drives the BDF startup ramp; a rejected step restarts it
  /// because the history spacing is no longer uniform).
  int ramp_ = 0;

  std::vector<double> mask_;
  std::array<std::vector<double>, 3> u_;
  std::array<std::vector<double>, 3> ubc_;  // frozen Dirichlet values
  bool bc_frozen_ = false;
  // Velocity history u^{n-1}, u^{n-2}, u^{n-3}.
  std::array<std::array<std::vector<double>, 3>, 3> uh_;
  // Convection history for EXT mode.
  std::array<std::array<std::vector<double>, 3>, 3> ch_;
  std::vector<double> p_;

  std::unique_ptr<PressureSystem> psys_;
  std::unique_ptr<DealiasedConvection> dealias_;
  std::unique_ptr<SchwarzPrecond> schwarz_;
  std::unique_ptr<SolutionProjection> proj_;
  std::unique_ptr<HelmholtzOp> hop_;
  double hop_h2_ = -1.0;  ///< cache key: h2 = beta0/dt of the cached hop_

  std::vector<std::unique_ptr<ScalarData>> scalars_;
  Forcing forcing_;
  FaultHook fault_hook_;
  std::vector<double> fmat_;  // cached 1D filter matrix
  mutable TensorWork work_;
  // Persistent per-step buffers (see ensure_scratch): field-length
  // temporaries, solver Krylov spaces, and the resilience rollback image
  // all live here so the steady-state step path never allocates.
  std::unique_ptr<StepScratch> scr_;
  std::unique_ptr<Snapshot> snap_;
  mutable std::vector<double> divscr_;  // divergence_norm work
  double flops_total_ = 0.0;
};

}  // namespace tsem
