#include "ns/navier_stokes.hpp"

#include <cmath>

#include "common/check.hpp"
#include "core/flops.hpp"
#include "core/operators.hpp"
#include "poly/basis1d.hpp"
#include "poly/filter.hpp"
#include "solver/cg.hpp"

namespace tsem {

struct NavierStokes::ScalarData {
  double diffusivity = 0.0;
  std::vector<double> mask;
  std::vector<double> th;
  std::vector<double> thbc;
  std::array<std::vector<double>, 3> hist;
  std::unique_ptr<HelmholtzOp> hop;
  double hop_beta0 = -1.0;
};

NavierStokes::NavierStokes(const Space& space, std::uint32_t dirichlet_tags,
                           NsOptions opt)
    : space_(&space), opt_(opt) {
  const Mesh& m = space.mesh();
  dim_ = m.dim;
  nl_ = space.nlocal();
  TSEM_REQUIRE(opt_.torder >= 1 && opt_.torder <= 3);
  mask_ = space.make_mask(dirichlet_tags);
  for (int c = 0; c < dim_; ++c) {
    u_[c].assign(nl_, 0.0);
    ubc_[c].assign(nl_, 0.0);
    for (auto& h : uh_) h[c].assign(nl_, 0.0);
    for (auto& h : ch_) h[c].assign(nl_, 0.0);
  }
  psys_ = std::make_unique<PressureSystem>(space, mask_);
  p_.assign(psys_->nloc(), 0.0);
  if (opt_.use_schwarz)
    schwarz_ = std::make_unique<SchwarzPrecond>(*psys_, opt_.schwarz);
  if (opt_.proj_len > 0)
    proj_ = std::make_unique<SolutionProjection>(psys_->nloc(),
                                                 opt_.proj_len);
  if (opt_.filter_alpha > 0.0)
    fmat_ = filter_matrix(m.order, opt_.filter_alpha);
  if (opt_.dealias) {
    TSEM_REQUIRE(opt_.convection == NsOptions::Convection::Oifs);
    dealias_ = std::make_unique<DealiasedConvection>(m);
  }
}

NavierStokes::~NavierStokes() = default;

int NavierStokes::add_scalar(std::uint32_t dirichlet_tags,
                             double diffusivity) {
  TSEM_REQUIRE(nsteps_ == 0);  // add species before the first step
  auto sc = std::make_unique<ScalarData>();
  sc->diffusivity = diffusivity;
  sc->mask = space_->make_mask(dirichlet_tags);
  sc->th.assign(nl_, 0.0);
  sc->thbc.assign(nl_, 0.0);
  for (auto& h : sc->hist) h.assign(nl_, 0.0);
  scalars_.push_back(std::move(sc));
  return static_cast<int>(scalars_.size()) - 1;
}

std::vector<double>& NavierStokes::scalar(int which) {
  TSEM_REQUIRE(which >= 0 && which < nscalars());
  return scalars_[which]->th;
}

const std::vector<double>& NavierStokes::scalar(int which) const {
  TSEM_REQUIRE(which >= 0 && which < nscalars());
  return scalars_[which]->th;
}

void NavierStokes::compute_bdf_coeffs(int order, double* beta0,
                                      double* c) const {
  c[0] = c[1] = c[2] = 0.0;
  switch (order) {
    case 1:
      *beta0 = 1.0;
      c[0] = 1.0;
      break;
    case 2:
      *beta0 = 1.5;
      c[0] = 2.0;
      c[1] = -0.5;
      break;
    default:
      *beta0 = 11.0 / 6.0;
      c[0] = 3.0;
      c[1] = -1.5;
      c[2] = 1.0 / 3.0;
      break;
  }
}

double NavierStokes::current_cfl() const {
  const Mesh& m = space_->mesh();
  const auto& b = Basis1D::get(m.order);
  const int n1 = m.n1d();
  // Minimum reference-space gap adjacent to each 1D node.
  std::vector<double> gap(n1);
  for (int i = 0; i < n1; ++i) {
    double g = 1e300;
    if (i > 0) g = std::min(g, b.z[i] - b.z[i - 1]);
    if (i < n1 - 1) g = std::min(g, b.z[i + 1] - b.z[i]);
    gap[i] = g;
  }
  double cfl = 0.0;
  const std::size_t nl = nl_;
  for (int e = 0; e < m.nelem; ++e) {
    const std::size_t off = static_cast<std::size_t>(e) * m.npe;
    for (int n = 0; n < m.npe; ++n) {
      int idx[3] = {0, 0, 0};
      int rem = n;
      for (int d = 0; d < dim_; ++d) {
        idx[d] = rem % n1;
        rem /= n1;
      }
      double s = 0.0;
      for (int d = 0; d < dim_; ++d) {
        double ur = 0.0;
        for (int c = 0; c < dim_; ++c)
          ur += u_[c][off + n] * m.drdx[(static_cast<std::size_t>(d) * dim_ +
                                         c) * nl + off + n];
        s += std::fabs(ur) / gap[idx[d]];
      }
      cfl = std::max(cfl, s);
    }
  }
  return cfl * opt_.dt;
}

double NavierStokes::divergence_norm() const {
  std::vector<double> dp(psys_->nloc());
  const double* uu[3] = {u_[0].data(), u_[1].data(),
                         dim_ == 3 ? u_[2].data() : nullptr};
  psys_->divergence(uu, dp.data());
  double s = 0.0;
  for (double v : dp) s += v * v;
  return std::sqrt(s);
}

double NavierStokes::kinetic_energy(
    const std::array<const double*, 3>& uref) const {
  const Mesh& m = space_->mesh();
  double e = 0.0;
  for (std::size_t i = 0; i < nl_; ++i) {
    double s = 0.0;
    for (int c = 0; c < dim_; ++c) {
      const double d = u_[c][i] - (uref[c] ? uref[c][i] : 0.0);
      s += d * d;
    }
    e += 0.5 * m.bm[i] * s;
  }
  return e;
}

void NavierStokes::oifs_advect(
    int q, int order, int substeps,
    const std::vector<std::vector<double>*>& fields,
    const std::vector<const double*>& field_masks) {
  const Mesh& m = space_->mesh();
  const auto& bmi = space_->bm_inv();
  const int nsub = substeps * q;
  const double h = (q * opt_.dt) / nsub;
  const double t_n1 = 0.0;   // time of u^{n-1} relative to itself
  const double t_n2 = -opt_.dt;

  // Advecting velocity at relative time s (s = 0 at t^{n-1}, the newest
  // known level; the integration runs from -(q-1)*dt ... wait, the field
  // being advected starts at t^{n-q} = -(q-1)*dt relative to t^{n-1} and
  // ends at t^n = +dt.
  std::array<std::vector<double>, 3> vbuf;
  for (int c = 0; c < dim_; ++c) vbuf[c].resize(nl_);
  auto velocity_at = [&](double s) {
    const double dt = opt_.dt;
    for (int c = 0; c < dim_; ++c) {
      if (order >= 3 && nsteps_ >= 2) {
        // Quadratic Lagrange through (0, -dt, -2dt): needed so the
        // advecting field does not cap the BDF3 scheme at 2nd order.
        const double w1 = (s + dt) * (s + 2 * dt) / (2 * dt * dt);
        const double w2 = -s * (s + 2 * dt) / (dt * dt);
        const double w3 = s * (s + dt) / (2 * dt * dt);
        for (std::size_t i = 0; i < nl_; ++i)
          vbuf[c][i] =
              w1 * u_[c][i] + w2 * uh_[0][c][i] + w3 * uh_[1][c][i];
      } else if (order >= 2 && nsteps_ >= 1) {
        const double w1 = (s - t_n2) / (t_n1 - t_n2);
        const double w2 = 1.0 - w1;
        for (std::size_t i = 0; i < nl_; ++i)
          vbuf[c][i] = w1 * u_[c][i] + w2 * uh_[0][c][i];
      } else {
        std::copy(u_[c].begin(), u_[c].end(), vbuf[c].begin());
      }
    }
  };

  const int nf = static_cast<int>(fields.size());
  std::vector<std::vector<double>> k1(nf), k2(nf), k3(nf), k4(nf), wtmp(nf);
  for (int f = 0; f < nf; ++f) {
    k1[f].resize(nl_);
    k2[f].resize(nl_);
    k3[f].resize(nl_);
    k4[f].resize(nl_);
    wtmp[f].resize(nl_);
  }

  const double* vel[3] = {vbuf[0].data(), vbuf[1].data(),
                          dim_ == 3 ? vbuf[2].data() : nullptr};
  auto rate = [&](const double* w, double* k, const double* fmask) {
    if (dealias_) {
      // Weak form directly from the fine-grid quadrature.
      dealias_->apply(vel, w, k, work_);
      for (std::size_t i = 0; i < nl_; ++i) k[i] = -k[i];
    } else {
      convect_local(m, vel, w, k, work_);
      for (std::size_t i = 0; i < nl_; ++i) k[i] *= -m.bm[i];
    }
    space_->gs().op(k);
    for (std::size_t i = 0; i < nl_; ++i) k[i] *= bmi[i] * fmask[i];
  };

  double s = -(q - 1) * opt_.dt;  // start time relative to t^{n-1}
  for (int step = 0; step < nsub; ++step) {
    // RK4 stages at s, s+h/2, s+h.
    velocity_at(s);
    for (int f = 0; f < nf; ++f)
      rate(fields[f]->data(), k1[f].data(), field_masks[f]);
    velocity_at(s + 0.5 * h);
    for (int f = 0; f < nf; ++f) {
      for (std::size_t i = 0; i < nl_; ++i)
        wtmp[f][i] = (*fields[f])[i] + 0.5 * h * k1[f][i];
      rate(wtmp[f].data(), k2[f].data(), field_masks[f]);
      for (std::size_t i = 0; i < nl_; ++i)
        wtmp[f][i] = (*fields[f])[i] + 0.5 * h * k2[f][i];
      rate(wtmp[f].data(), k3[f].data(), field_masks[f]);
    }
    velocity_at(s + h);
    for (int f = 0; f < nf; ++f) {
      for (std::size_t i = 0; i < nl_; ++i)
        wtmp[f][i] = (*fields[f])[i] + h * k3[f][i];
      rate(wtmp[f].data(), k4[f].data(), field_masks[f]);
      for (std::size_t i = 0; i < nl_; ++i)
        (*fields[f])[i] += h / 6.0 *
                           (k1[f][i] + 2.0 * k2[f][i] + 2.0 * k3[f][i] +
                            k4[f][i]);
    }
    s += h;
    flops_total_ += 4.0 * nf * (convection_flops(m) + 6.0 * nl_);
  }
}

int NavierStokes::helmholtz_solve(const HelmholtzOp& h,
                                  const std::vector<double>& mask,
                                  const std::vector<double>& bcvals,
                                  const std::vector<double>& rhs_weak,
                                  std::vector<double>& out) {
  const Mesh& m = space_->mesh();
  // Lift: ub carries the Dirichlet values, zero elsewhere.
  std::vector<double> ub(nl_), b(rhs_weak), t(nl_);
  for (std::size_t i = 0; i < nl_; ++i)
    ub[i] = (1.0 - mask[i]) * bcvals[i];
  space_->gs().op(b.data());
  apply_helmholtz_local(m, h.h1(), h.h2(), ub.data(), t.data(), work_);
  space_->gs().op(t.data());
  for (std::size_t i = 0; i < nl_; ++i) b[i] = (b[i] - t[i]) * mask[i];

  // Initial guess: previous solution minus the lift.
  std::vector<double> x(nl_);
  for (std::size_t i = 0; i < nl_; ++i) x[i] = (out[i] - ub[i]) * mask[i];

  auto apply = [&](const double* xx, double* yy) { h.apply(xx, yy); };
  auto dot = [&](const double* a2, const double* b2) {
    return space_->glsum_dot(a2, b2);
  };
  CgOptions copt;
  copt.tol = opt_.helm_tol;
  copt.relative = true;
  copt.max_iter = opt_.max_iter;
  auto res = pcg(nl_, apply, jacobi_precond(h.diagonal()), dot, b.data(),
                 x.data(), copt);
  for (std::size_t i = 0; i < nl_; ++i) out[i] = x[i] + ub[i];
  flops_total_ +=
      res.iterations * (stiffness_flops(m) + 14.0 * static_cast<double>(nl_));
  return res.iterations;
}

void NavierStokes::apply_velocity_filter() {
  if (fmat_.empty()) return;
  const Mesh& m = space_->mesh();
  for (int c = 0; c < dim_; ++c) {
    apply_filter_local(m, fmat_, u_[c].data(), work_);
    space_->daverage(u_[c].data());
    for (std::size_t i = 0; i < nl_; ++i)
      u_[c][i] = mask_[i] * u_[c][i] + (1.0 - mask_[i]) * ubc_[c][i];
  }
  for (auto& sc : scalars_) {
    apply_filter_local(m, fmat_, sc->th.data(), work_);
    space_->daverage(sc->th.data());
    for (std::size_t i = 0; i < nl_; ++i)
      sc->th[i] =
          sc->mask[i] * sc->th[i] + (1.0 - sc->mask[i]) * sc->thbc[i];
  }
  flops_total_ += dim_ * 2.0 * tensor_apply_flops(m.n1d(), m.n1d(), m.dim) *
                  m.nelem;
}

StepStats NavierStokes::step() {
  const Mesh& m = space_->mesh();
  StepStats stats;
  const int order = std::min(opt_.torder, nsteps_ + 1);
  double beta0, cq[3];
  compute_bdf_coeffs(order, &beta0, cq);
  const double dt = opt_.dt;

  if (!bc_frozen_) {
    for (int c = 0; c < dim_; ++c) {
      space_->daverage(u_[c].data());
      ubc_[c] = u_[c];
    }
    for (auto& sc : scalars_) {
      space_->daverage(sc->th.data());
      sc->thbc = sc->th;
    }
    bc_frozen_ = true;
  }

  stats.cfl = current_cfl();
  const int base_sub =
      opt_.oifs_substeps > 0
          ? opt_.oifs_substeps
          : std::max(1, static_cast<int>(std::ceil(stats.cfl / 0.5)));

  // Snapshot of the entering state (u^{n-1} etc.).
  std::array<std::vector<double>, 3> un1;
  std::vector<std::vector<double>> thn1(scalars_.size());
  for (int c = 0; c < dim_; ++c) un1[c] = u_[c];
  for (std::size_t sc = 0; sc < scalars_.size(); ++sc)
    thn1[sc] = scalars_[sc]->th;

  // ---- convective contribution -> weak rhs accumulators ----
  const int nf = dim_ + static_cast<int>(scalars_.size());
  std::vector<std::vector<double>> rhs(nf);
  for (auto& r : rhs) r.assign(nl_, 0.0);

  if (opt_.convection == NsOptions::Convection::Oifs) {
    for (int q = 1; q <= order; ++q) {
      // Fields at t^{n-q}: copies that get advected to t^n.
      std::vector<std::vector<double>> adv(nf);
      std::vector<std::vector<double>*> fptr(nf);
      std::vector<const double*> fmask(nf);
      for (int c = 0; c < dim_; ++c) {
        adv[c] = (q == 1) ? un1[c] : uh_[q - 2][c];
        fptr[c] = &adv[c];
        fmask[c] = mask_.data();
      }
      for (std::size_t sc = 0; sc < scalars_.size(); ++sc) {
        const int f = dim_ + static_cast<int>(sc);
        adv[f] = (q == 1) ? thn1[sc] : scalars_[sc]->hist[q - 2];
        fptr[f] = &adv[f];
        fmask[f] = scalars_[sc]->mask.data();
      }
      oifs_advect(q, order, base_sub, fptr, fmask);
      const double coef = cq[q - 1] / dt;
      for (int f = 0; f < nf; ++f)
        for (std::size_t i = 0; i < nl_; ++i) rhs[f][i] += coef * adv[f][i];
    }
  } else {
    // EXTk: BDF terms on the raw history + extrapolated convection.
    double gam[3] = {1.0, 0.0, 0.0};
    if (order == 2) {
      gam[0] = 2.0;
      gam[1] = -1.0;
    } else if (order == 3) {
      gam[0] = 3.0;
      gam[1] = -3.0;
      gam[2] = 1.0;
    }
    // Convection of the newest level into history slot 0 (rotated below).
    const double* vel[3] = {un1[0].data(), un1[1].data(),
                            dim_ == 3 ? un1[2].data() : nullptr};
    for (int c = 0; c < dim_; ++c)
      convect_local(m, vel, un1[c].data(), ch_[0][c].data(), work_);
    for (std::size_t sc = 0; sc < scalars_.size(); ++sc)
      convect_local(m, vel, thn1[sc].data(), scalars_[sc]->hist[2].data(),
                    work_);
    flops_total_ += nf * convection_flops(m);
    for (int q = 1; q <= order; ++q) {
      const double coef = cq[q - 1] / dt;
      for (int c = 0; c < dim_; ++c) {
        const auto& uq = (q == 1) ? un1[c] : uh_[q - 2][c];
        for (std::size_t i = 0; i < nl_; ++i) rhs[c][i] += coef * uq[i];
      }
      for (std::size_t sc = 0; sc < scalars_.size(); ++sc) {
        const auto& tq = (q == 1) ? thn1[sc] : scalars_[sc]->hist[q - 2];
        for (std::size_t i = 0; i < nl_; ++i)
          rhs[dim_ + sc][i] += coef * tq[i];
      }
    }
    for (int q = 1; q <= order; ++q) {
      if (gam[q - 1] == 0.0) continue;
      for (int c = 0; c < dim_; ++c) {
        const auto& cc = (q == 1) ? ch_[0][c] : ch_[q - 1][c];
        for (std::size_t i = 0; i < nl_; ++i)
          rhs[c][i] -= gam[q - 1] * cc[i];
      }
      // (scalar EXT convection history kept in hist[2] for q=1 only; the
      // scalar path is primarily exercised with OIFS)
    }
  }

  // ---- forcing ----
  if (forcing_) {
    std::vector<std::vector<double>> f(dim_);
    std::array<double*, 3> fp = {nullptr, nullptr, nullptr};
    for (int c = 0; c < dim_; ++c) {
      f[c].assign(nl_, 0.0);
      fp[c] = f[c].data();
    }
    forcing_(*this, time_ + dt, fp);
    for (int c = 0; c < dim_; ++c)
      for (std::size_t i = 0; i < nl_; ++i) rhs[c][i] += f[c][i];
  }

  // ---- Helmholtz solves for u* ----
  if (!hop_ || hop_beta0_ != beta0) {
    hop_ = std::make_unique<HelmholtzOp>(*space_, opt_.viscosity, beta0 / dt,
                                         mask_);
    hop_beta0_ = beta0;
  }
  // Weak rhs: B * rhs + D^T p (lagged pressure gradient).
  {
    std::array<std::vector<double>, 3> gp;
    double* gpp[3] = {nullptr, nullptr, nullptr};
    for (int c = 0; c < dim_; ++c) {
      gp[c].assign(nl_, 0.0);
      gpp[c] = gp[c].data();
    }
    psys_->gradient_t(p_.data(), gpp);
    flops_total_ += e_apply_flops(*psys_) / 2.0;
    for (int c = 0; c < dim_; ++c) {
      std::vector<double> weak(nl_);
      for (std::size_t i = 0; i < nl_; ++i)
        weak[i] = m.bm[i] * rhs[c][i] + gp[c][i];
      stats.helmholtz_iters[c] =
          helmholtz_solve(*hop_, mask_, ubc_[c], weak, u_[c]);
    }
  }

  // ---- scalar (species) transport ----
  for (std::size_t sc = 0; sc < scalars_.size(); ++sc) {
    auto& sd = *scalars_[sc];
    if (!sd.hop || sd.hop_beta0 != beta0) {
      sd.hop = std::make_unique<HelmholtzOp>(*space_, sd.diffusivity,
                                             beta0 / dt, sd.mask);
      sd.hop_beta0 = beta0;
    }
    std::vector<double> weak(nl_);
    for (std::size_t i = 0; i < nl_; ++i)
      weak[i] = m.bm[i] * rhs[dim_ + sc][i];
    helmholtz_solve(*sd.hop, sd.mask, sd.thbc, weak, sd.th);
  }

  // ---- pressure correction ----
  {
    const std::size_t np = psys_->nloc();
    std::vector<double> g(np), dp(np, 0.0);
    const double* uu[3] = {u_[0].data(), u_[1].data(),
                           dim_ == 3 ? u_[2].data() : nullptr};
    psys_->divergence(uu, g.data());
    const double scale = -beta0 / dt;
    for (auto& v : g) v *= scale;
    if (opt_.pressure_mean_free) psys_->remove_mean_plain(g.data());

    auto applyE = [&](const double* x, double* y) {
      psys_->apply_E(x, y);
      // Keep the Krylov space on the mean-free quotient (E preserves it
      // exactly in exact arithmetic; this suppresses roundoff drift of
      // the singular mode).
      if (opt_.pressure_mean_free) psys_->remove_mean_plain(y);
      flops_total_ += e_apply_flops(*psys_);
    };
    auto pdot = [np](const double* a2, const double* b2) {
      double s = 0.0;
      for (std::size_t i = 0; i < np; ++i) s += a2[i] * b2[i];
      return s;
    };
    auto precond = [&](const double* r, double* z) {
      if (schwarz_) {
        schwarz_->apply(r, z);
        flops_total_ += schwarz_->local_flops_per_apply();
        if (opt_.pressure_mean_free) psys_->remove_mean_plain(z);
      } else {
        std::copy(r, r + np, z);
      }
    };

    std::vector<double> p0(np, 0.0);
    if (proj_) {
      std::vector<double> r(np);
      stats.pressure_res0 = proj_->project(g.data(), p0.data(), r.data());
      dp = p0;
      flops_total_ += 4.0 * proj_->size() * static_cast<double>(np);
    }
    // Tolerance relative to the FULL rhs norm (not the projection-reduced
    // residual), so projection genuinely reduces the iteration count.
    double gnorm = 0.0;
    for (std::size_t i = 0; i < np; ++i) gnorm += g[i] * g[i];
    gnorm = std::sqrt(gnorm);
    CgOptions copt;
    copt.tol = opt_.pres_tol * (gnorm > 0.0 ? gnorm : 1.0);
    copt.max_iter = opt_.max_iter;
    auto res = pcg(np, applyE, precond, pdot, g.data(), dp.data(), copt);
    stats.pressure_iters = res.iterations;
    if (!proj_) stats.pressure_res0 = res.initial_residual;
    if (proj_) proj_->update(dp.data(), p0.data(), applyE);
    if (opt_.pressure_mean_free) psys_->remove_mean_plain(dp.data());

    // Velocity correction and pressure update.
    std::array<std::vector<double>, 3> gd;
    double* gdp[3] = {nullptr, nullptr, nullptr};
    for (int c = 0; c < dim_; ++c) {
      gd[c].assign(nl_, 0.0);
      gdp[c] = gd[c].data();
    }
    psys_->gradient_t(dp.data(), gdp);
    flops_total_ += e_apply_flops(*psys_) / 2.0;
    const auto& bmi = space_->bm_inv();
    const double corr = dt / beta0;
    for (int c = 0; c < dim_; ++c) {
      space_->gs().op(gd[c].data());
      for (std::size_t i = 0; i < nl_; ++i)
        u_[c][i] += corr * mask_[i] * bmi[i] * gd[c][i];
    }
    for (std::size_t i = 0; i < np; ++i) p_[i] += dp[i];
    if (opt_.pressure_mean_free) psys_->remove_mean(p_.data());
  }

  // ---- filter, history rotation, stats ----
  apply_velocity_filter();

  for (int c = 0; c < dim_; ++c) {
    uh_[1][c].swap(uh_[0][c]);
    uh_[0][c].swap(un1[c]);
  }
  for (std::size_t sc = 0; sc < scalars_.size(); ++sc) {
    scalars_[sc]->hist[1].swap(scalars_[sc]->hist[0]);
    scalars_[sc]->hist[0].swap(thn1[sc]);
  }
  if (opt_.convection == NsOptions::Convection::Ext) {
    // ch_[0] holds C(u^{n-1}) computed this step; rotate to history.
    for (int c = 0; c < dim_; ++c) {
      ch_[2][c].swap(ch_[1][c]);
      ch_[1][c].swap(ch_[0][c]);
    }
  }

  time_ += dt;
  ++nsteps_;
  stats.step = nsteps_;
  stats.time = time_;
  stats.divergence = divergence_norm();
  stats.flops = flops_total_;
  return stats;
}

}  // namespace tsem
