#include "ns/navier_stokes.hpp"

#include <cmath>

#include "common/check.hpp"
#include "core/flops.hpp"
#include "io/binfile.hpp"
#include "core/operators.hpp"
#include "obs/metrics.hpp"
#include "poly/basis1d.hpp"
#include "poly/filter.hpp"
#include "solver/setup_bundle.hpp"

namespace tsem {
namespace {

bool all_finite(const std::vector<double>& v) {
  for (double x : v)
    if (!std::isfinite(x)) return false;
  return true;
}

// Structured per-step trace record: the full StepStats, recovery-ladder
// rungs included, as one event in the MetricsRegistry ring buffer.
void emit_step_event(const StepStats& s) {
  if constexpr (!obs::kEnabled) {
    (void)s;
    return;
  }
  obs::Json e = obs::Json::object();
  e["event"] = "ns/step";
  e["step"] = s.step;
  e["time"] = s.time;
  e["dt"] = s.dt;
  e["pressure_iters"] = s.pressure_iters;
  obs::Json hi = obs::Json::array();
  obs::Json hs = obs::Json::array();
  for (int c = 0; c < 3; ++c) {
    hi.push_back(s.helmholtz_iters[c]);
    hs.push_back(to_string(s.helmholtz_status[c]));
  }
  e["helmholtz_iters"] = std::move(hi);
  e["helmholtz_status"] = std::move(hs);
  e["pressure_res0"] = s.pressure_res0;
  e["divergence"] = s.divergence;
  e["cfl"] = s.cfl;
  e["flops"] = s.flops;
  e["pressure_status"] = to_string(s.pressure_status);
  e["scalar_status"] = to_string(s.scalar_status);
  e["attempts"] = s.attempts;
  e["dt_halvings"] = s.dt_halvings;
  e["cfl_rejected"] = s.cfl_rejected;
  e["projection_flushed"] = s.projection_flushed;
  e["precond_fallback"] = s.precond_fallback;
  e["nonfinite_field"] = s.nonfinite_field;
  e["recovered"] = s.recovered;
  e["failed"] = s.failed;
  obs::emit_event(std::move(e));

  obs::count("ns/steps");
  obs::record("ns/pressure_iters", s.pressure_iters);
  obs::record("ns/divergence", s.divergence);
  obs::record("ns/cfl", s.cfl);
  if (s.attempts > 1) obs::count("ns/retries", s.attempts - 1);
  if (s.recovered) obs::count("ns/recovered_steps");
  if (s.failed) obs::count("ns/failed_steps");
}

}  // namespace

struct NavierStokes::ScalarData {
  double diffusivity = 0.0;
  std::vector<double> mask;
  std::vector<double> th;
  std::vector<double> thbc;
  std::array<std::vector<double>, 3> hist;
  std::unique_ptr<HelmholtzOp> hop;
  double hop_h2 = -1.0;
};

/// Rollback image for one step attempt: everything attempt_step mutates
/// before the accept point.  ubc_/bc_frozen_ are excluded on purpose — the
/// freeze is computed from the entering fields, so a retry reproduces it
/// bit-exactly.
struct NavierStokes::Snapshot {
  std::array<std::vector<double>, 3> u;
  std::array<std::array<std::vector<double>, 3>, 3> uh, ch;
  std::vector<double> p;
  std::vector<std::vector<double>> th;
  std::vector<std::array<std::vector<double>, 3>> th_hist;
  // Projection basis image.  The outer arrays only ever grow (the live
  // basis cycles 0 -> lmax -> restart); proj_size says how many leading
  // entries are valid, so the save path is pure copy-assign into retained
  // buffers — no allocator traffic as the basis shrinks and regrows.
  std::vector<std::vector<double>> proj_q, proj_w;
  std::size_t proj_size = 0;
};

/// Everything a step attempt needs that is sized by the discretization:
/// the entering-state copies, rhs accumulators, OIFS/RK4 stage buffers,
/// weak-form and pressure temporaries, and the per-solver scratch
/// (Helmholtz lift + CG, pressure projection + CG).  One instance lives
/// for the integrator's lifetime; ensure_scratch sizes it once.
struct NavierStokes::StepScratch {
  std::array<std::vector<double>, 3> un1, gp, gd, f;
  std::vector<std::vector<double>> thn1, rhs, adv;
  std::vector<std::vector<double>*> fptr;
  std::vector<const double*> fmask;
  std::vector<double> weak, g, dp;
  // Per-component weak rhs for the fused velocity Helmholtz solve.
  std::array<std::vector<double>, 3> weak3;
  // Pointer tables for the fused multi-field operator calls.
  std::vector<const double*> min;
  std::vector<double*> mout;
  // oifs_advect: interpolated advecting velocity and RK4 stages.
  std::array<std::vector<double>, 3> vbuf;
  std::vector<std::vector<double>> k1, k2, k3, k4, wtmp;
  HelmholtzSolveScratch helm;
  PressureSolveScratch pres;
};

NavierStokes::NavierStokes(const Space& space, std::uint32_t dirichlet_tags,
                           NsOptions opt)
    : space_(&space), opt_(opt) {
  const Mesh& m = space.mesh();
  dim_ = m.dim;
  nl_ = space.nlocal();
  TSEM_REQUIRE(opt_.torder >= 1 && opt_.torder <= 3);
  mask_ = space.make_mask(dirichlet_tags);
  for (int c = 0; c < dim_; ++c) {
    u_[c].assign(nl_, 0.0);
    ubc_[c].assign(nl_, 0.0);
    for (auto& h : uh_) h[c].assign(nl_, 0.0);
    for (auto& h : ch_) h[c].assign(nl_, 0.0);
  }
  psys_ = std::make_unique<PressureSystem>(space, mask_);
  p_.assign(psys_->nloc(), 0.0);
  if (opt_.use_schwarz) {
    opt_.schwarz.setup_import = opt_.setup_import;
    opt_.schwarz.setup_record = opt_.setup_record;
    schwarz_ = std::make_unique<SchwarzPrecond>(*psys_, opt_.schwarz);
    opt_.schwarz.setup_import = nullptr;  // don't dangle past the ctor
    opt_.schwarz.setup_record = nullptr;
  }
  if (opt_.proj_len > 0)
    proj_ = std::make_unique<SolutionProjection>(psys_->nloc(),
                                                 opt_.proj_len);
  if (opt_.filter_alpha > 0.0)
    fmat_ = filter_matrix(m.order, opt_.filter_alpha);
  if (opt_.dealias) {
    TSEM_REQUIRE(opt_.convection == NsOptions::Convection::Oifs);
    if (opt_.setup_import != nullptr && !opt_.setup_import->dealias.empty()) {
      ByteReader r(opt_.setup_import->dealias);
      dealias_ = DealiasedConvection::deserialize(r, m);
      if (dealias_ != nullptr && !r.exhausted()) dealias_.reset();
    }
    if (dealias_ == nullptr)
      dealias_ = std::make_unique<DealiasedConvection>(m);
    if (opt_.setup_record != nullptr) {
      ByteWriter w;
      dealias_->serialize(w);
      opt_.setup_record->dealias = w.take();
    }
  }
}

NavierStokes::~NavierStokes() = default;

int NavierStokes::add_scalar(std::uint32_t dirichlet_tags,
                             double diffusivity) {
  TSEM_REQUIRE(nsteps_ == 0);  // add species before the first step
  auto sc = std::make_unique<ScalarData>();
  sc->diffusivity = diffusivity;
  sc->mask = space_->make_mask(dirichlet_tags);
  sc->th.assign(nl_, 0.0);
  sc->thbc.assign(nl_, 0.0);
  for (auto& h : sc->hist) h.assign(nl_, 0.0);
  scalars_.push_back(std::move(sc));
  return static_cast<int>(scalars_.size()) - 1;
}

std::vector<double>& NavierStokes::scalar(int which) {
  TSEM_REQUIRE(which >= 0 && which < nscalars());
  return scalars_[which]->th;
}

const std::vector<double>& NavierStokes::scalar(int which) const {
  TSEM_REQUIRE(which >= 0 && which < nscalars());
  return scalars_[which]->th;
}

void NavierStokes::compute_bdf_coeffs(int order, double* beta0,
                                      double* c) const {
  c[0] = c[1] = c[2] = 0.0;
  switch (order) {
    case 1:
      *beta0 = 1.0;
      c[0] = 1.0;
      break;
    case 2:
      *beta0 = 1.5;
      c[0] = 2.0;
      c[1] = -0.5;
      break;
    default:
      *beta0 = 11.0 / 6.0;
      c[0] = 3.0;
      c[1] = -1.5;
      c[2] = 1.0 / 3.0;
      break;
  }
}

double NavierStokes::cfl_rate() const {
  const Mesh& m = space_->mesh();
  const auto& b = Basis1D::get(m.order);
  const int n1 = m.n1d();
  // Minimum reference-space gap adjacent to each 1D node.
  std::vector<double> gap(n1);
  for (int i = 0; i < n1; ++i) {
    double g = 1e300;
    if (i > 0) g = std::min(g, b.z[i] - b.z[i - 1]);
    if (i < n1 - 1) g = std::min(g, b.z[i + 1] - b.z[i]);
    gap[i] = g;
  }
  double rate = 0.0;
  const std::size_t nl = nl_;
  for (int e = 0; e < m.nelem; ++e) {
    const std::size_t off = static_cast<std::size_t>(e) * m.npe;
    for (int n = 0; n < m.npe; ++n) {
      int idx[3] = {0, 0, 0};
      int rem = n;
      for (int d = 0; d < dim_; ++d) {
        idx[d] = rem % n1;
        rem /= n1;
      }
      double s = 0.0;
      for (int d = 0; d < dim_; ++d) {
        double ur = 0.0;
        for (int c = 0; c < dim_; ++c)
          ur += u_[c][off + n] * m.drdx[(static_cast<std::size_t>(d) * dim_ +
                                         c) * nl + off + n];
        s += std::fabs(ur) / gap[idx[d]];
      }
      rate = std::max(rate, s);
    }
  }
  return rate;
}

double NavierStokes::current_cfl() const { return cfl_rate() * opt_.dt; }

double NavierStokes::divergence_norm() const {
  if (divscr_.size() < psys_->nloc()) divscr_.resize(psys_->nloc());
  const double* uu[3] = {u_[0].data(), u_[1].data(),
                         dim_ == 3 ? u_[2].data() : nullptr};
  psys_->divergence(uu, divscr_.data());
  double s = 0.0;
  for (std::size_t i = 0; i < psys_->nloc(); ++i) s += divscr_[i] * divscr_[i];
  return std::sqrt(s);
}

double NavierStokes::kinetic_energy(
    const std::array<const double*, 3>& uref) const {
  const Mesh& m = space_->mesh();
  double e = 0.0;
  for (std::size_t i = 0; i < nl_; ++i) {
    double s = 0.0;
    for (int c = 0; c < dim_; ++c) {
      const double d = u_[c][i] - (uref[c] ? uref[c][i] : 0.0);
      s += d * d;
    }
    e += 0.5 * m.bm[i] * s;
  }
  return e;
}

void NavierStokes::oifs_advect(
    double dt, int q, int order, int substeps,
    const std::vector<std::vector<double>*>& fields,
    const std::vector<const double*>& field_masks) {
  const Mesh& m = space_->mesh();
  const auto& bmi = space_->bm_inv();
  const int nsub = substeps * q;
  const double h = (q * dt) / nsub;
  const double t_n1 = 0.0;   // time of u^{n-1} relative to itself
  const double t_n2 = -dt;

  // Advecting velocity at relative time s (s = 0 at t^{n-1}, the newest
  // known level; the integration runs from -(q-1)*dt ... wait, the field
  // being advected starts at t^{n-q} = -(q-1)*dt relative to t^{n-1} and
  // ends at t^n = +dt.
  std::array<std::vector<double>, 3>& vbuf = scr_->vbuf;
  auto velocity_at = [&](double s) {
    for (int c = 0; c < dim_; ++c) {
      if (order >= 3 && nsteps_ >= 2) {
        // Quadratic Lagrange through (0, -dt, -2dt): needed so the
        // advecting field does not cap the BDF3 scheme at 2nd order.
        const double w1 = (s + dt) * (s + 2 * dt) / (2 * dt * dt);
        const double w2 = -s * (s + 2 * dt) / (dt * dt);
        const double w3 = s * (s + dt) / (2 * dt * dt);
        for (std::size_t i = 0; i < nl_; ++i)
          vbuf[c][i] =
              w1 * u_[c][i] + w2 * uh_[0][c][i] + w3 * uh_[1][c][i];
      } else if (order >= 2 && nsteps_ >= 1) {
        const double w1 = (s - t_n2) / (t_n1 - t_n2);
        const double w2 = 1.0 - w1;
        for (std::size_t i = 0; i < nl_; ++i)
          vbuf[c][i] = w1 * u_[c][i] + w2 * uh_[0][c][i];
      } else {
        std::copy(u_[c].begin(), u_[c].end(), vbuf[c].begin());
      }
    }
  };

  const int nf = static_cast<int>(fields.size());
  // RK4 stage buffers from the persistent scratch (sized by
  // ensure_scratch before any attempt reaches this point).
  std::vector<std::vector<double>>& k1 = scr_->k1;
  std::vector<std::vector<double>>& k2 = scr_->k2;
  std::vector<std::vector<double>>& k3 = scr_->k3;
  std::vector<std::vector<double>>& k4 = scr_->k4;
  std::vector<std::vector<double>>& wtmp = scr_->wtmp;
  TSEM_ASSERT(static_cast<int>(k1.size()) >= nf);

  const double* vel[3] = {vbuf[0].data(), vbuf[1].data(),
                          dim_ == 3 ? vbuf[2].data() : nullptr};
  // One fused rate evaluation for all advected fields: the collocation
  // path streams the element data once across the fields
  // (convect_local_multi); the dealiased path keeps per-field applies
  // (its fine-grid interpolants are per-field anyway).  Per-field values
  // are bitwise identical to the per-field rate() this replaces.
  std::vector<const double*>& win = scr_->min;
  std::vector<double*>& kout = scr_->mout;
  auto rate_all = [&](std::vector<std::vector<double>>& k) {
    for (int f = 0; f < nf; ++f) kout[f] = k[f].data();
    if (dealias_) {
      // Weak form directly from the fine-grid quadrature.
      for (int f = 0; f < nf; ++f) {
        dealias_->apply(vel, win[f], kout[f], work_);
        double* kf = kout[f];
        for (std::size_t i = 0; i < nl_; ++i) kf[i] = -kf[i];
      }
    } else {
      convect_local_multi(m, vel, win.data(), kout.data(), nf, work_);
      for (int f = 0; f < nf; ++f) {
        double* kf = kout[f];
        for (std::size_t i = 0; i < nl_; ++i) kf[i] *= -m.bm[i];
      }
    }
    for (int f = 0; f < nf; ++f) {
      double* kf = kout[f];
      const double* fmask = field_masks[f];
      space_->gs().op(kf);
      for (std::size_t i = 0; i < nl_; ++i) kf[i] *= bmi[i] * fmask[i];
    }
  };

  double s = -(q - 1) * dt;  // start time relative to t^{n-1}
  for (int step = 0; step < nsub; ++step) {
    // RK4 stages at s, s+h/2, s+h.
    velocity_at(s);
    for (int f = 0; f < nf; ++f) win[f] = fields[f]->data();
    rate_all(k1);
    velocity_at(s + 0.5 * h);
    for (int f = 0; f < nf; ++f) {
      for (std::size_t i = 0; i < nl_; ++i)
        wtmp[f][i] = (*fields[f])[i] + 0.5 * h * k1[f][i];
      win[f] = wtmp[f].data();
    }
    rate_all(k2);
    for (int f = 0; f < nf; ++f)
      for (std::size_t i = 0; i < nl_; ++i)
        wtmp[f][i] = (*fields[f])[i] + 0.5 * h * k2[f][i];
    rate_all(k3);
    velocity_at(s + h);
    for (int f = 0; f < nf; ++f)
      for (std::size_t i = 0; i < nl_; ++i)
        wtmp[f][i] = (*fields[f])[i] + h * k3[f][i];
    rate_all(k4);
    for (int f = 0; f < nf; ++f)
      for (std::size_t i = 0; i < nl_; ++i)
        (*fields[f])[i] += h / 6.0 *
                           (k1[f][i] + 2.0 * k2[f][i] + 2.0 * k3[f][i] +
                            k4[f][i]);
    s += h;
    flops_total_ += 4.0 * nf * (convection_flops(m) + 6.0 * nl_);
  }
}

void NavierStokes::apply_velocity_filter() {
  if (fmat_.empty()) return;
  const Mesh& m = space_->mesh();
  ensure_scratch();
  // One fused sweep filters every component and scalar (the filter matrix
  // stays hot across fields); the dssum/mask blend stays per field.
  std::vector<double*>& fu = scr_->mout;
  for (int c = 0; c < dim_; ++c) fu[c] = u_[c].data();
  for (std::size_t sc = 0; sc < scalars_.size(); ++sc)
    fu[dim_ + sc] = scalars_[sc]->th.data();
  const int nfall = dim_ + static_cast<int>(scalars_.size());
  apply_filter_local_multi(m, fmat_, fu.data(), nfall, work_);
  for (int c = 0; c < dim_; ++c) {
    space_->daverage(u_[c].data());
    for (std::size_t i = 0; i < nl_; ++i)
      u_[c][i] = mask_[i] * u_[c][i] + (1.0 - mask_[i]) * ubc_[c][i];
  }
  for (auto& sc : scalars_) {
    space_->daverage(sc->th.data());
    for (std::size_t i = 0; i < nl_; ++i)
      sc->th[i] =
          sc->mask[i] * sc->th[i] + (1.0 - sc->mask[i]) * sc->thbc[i];
  }
  flops_total_ += dim_ * 2.0 * tensor_apply_flops(m.n1d(), m.n1d(), m.dim) *
                  m.nelem;
}

void NavierStokes::ensure_scratch() {
  if (!scr_) scr_ = std::make_unique<StepScratch>();
  StepScratch& s = *scr_;
  const std::size_t nsc = scalars_.size();
  const int nf = dim_ + static_cast<int>(nsc);
  const std::size_t np = psys_->nloc();
  for (int c = 0; c < dim_; ++c) {
    s.un1[c].resize(nl_);
    s.gp[c].resize(nl_);
    s.gd[c].resize(nl_);
    s.f[c].resize(nl_);
    s.vbuf[c].resize(nl_);
  }
  s.thn1.resize(nsc);
  for (auto& v : s.thn1) v.resize(nl_);
  s.rhs.resize(nf);
  s.adv.resize(nf);
  s.k1.resize(nf);
  s.k2.resize(nf);
  s.k3.resize(nf);
  s.k4.resize(nf);
  s.wtmp.resize(nf);
  for (int f = 0; f < nf; ++f) {
    s.rhs[f].resize(nl_);
    s.adv[f].resize(nl_);
    s.k1[f].resize(nl_);
    s.k2[f].resize(nl_);
    s.k3[f].resize(nl_);
    s.k4[f].resize(nl_);
    s.wtmp[f].resize(nl_);
  }
  s.fptr.resize(nf);
  s.fmask.resize(nf);
  s.min.resize(nf);
  s.mout.resize(nf);
  for (int c = 0; c < dim_; ++c) s.weak3[c].resize(nl_);
  s.weak.resize(nl_);
  s.g.resize(np);
  s.dp.resize(np);
}

bool NavierStokes::solve_failed(SolveStatus s) const {
  return is_hard_failure(s) ||
         (opt_.resilience.maxiter_is_failure && s == SolveStatus::MaxIter);
}

void NavierStokes::save_snapshot(Snapshot& s) const {
  s.u = u_;
  s.uh = uh_;
  s.ch = ch_;
  s.p = p_;
  s.th.resize(scalars_.size());
  s.th_hist.resize(scalars_.size());
  for (std::size_t sc = 0; sc < scalars_.size(); ++sc) {
    s.th[sc] = scalars_[sc]->th;
    s.th_hist[sc] = scalars_[sc]->hist;
  }
  if (proj_) {
    const auto& bq = proj_->basis_q();
    const auto& bw = proj_->basis_w();
    s.proj_size = bq.size();
    if (s.proj_q.size() < bq.size()) {
      s.proj_q.resize(bq.size());
      s.proj_w.resize(bq.size());
    }
    for (std::size_t i = 0; i < bq.size(); ++i) {
      s.proj_q[i] = bq[i];
      s.proj_w[i] = bw[i];
    }
  }
}

void NavierStokes::restore_snapshot(const Snapshot& s) {
  u_ = s.u;
  uh_ = s.uh;
  ch_ = s.ch;
  p_ = s.p;
  for (std::size_t sc = 0; sc < scalars_.size(); ++sc) {
    scalars_[sc]->th = s.th[sc];
    scalars_[sc]->hist = s.th_hist[sc];
  }
  if (proj_) {
    // Only the leading proj_size entries are live (the outer arrays are
    // retained at high-water size); restore_basis wants exact-size
    // parallel arrays.  This copies — fine, rollback is the rare path.
    std::vector<std::vector<double>> q(s.proj_q.begin(),
                                       s.proj_q.begin() + s.proj_size);
    std::vector<std::vector<double>> w(s.proj_w.begin(),
                                       s.proj_w.begin() + s.proj_size);
    proj_->restore_basis(std::move(q), std::move(w));
  }
}

bool NavierStokes::attempt_step(double dt, int order,
                                const AttemptPolicy& pol, int attempt,
                                StepStats& stats) {
  const Mesh& m = space_->mesh();
  const int this_step = nsteps_ + 1;
  double beta0, cq[3];
  compute_bdf_coeffs(order, &beta0, cq);
  ensure_scratch();
  StepScratch& scr = *scr_;

  if (!bc_frozen_) {
    for (int c = 0; c < dim_; ++c) {
      space_->daverage(u_[c].data());
      ubc_[c] = u_[c];
    }
    for (auto& sc : scalars_) {
      space_->daverage(sc->th.data());
      sc->thbc = sc->th;
    }
    bc_frozen_ = true;
  }

  stats.cfl = cfl_rate() * dt;
  const int base_sub =
      opt_.oifs_substeps > 0
          ? opt_.oifs_substeps
          : std::max(1, static_cast<int>(std::ceil(stats.cfl / 0.5)));

  // Snapshot of the entering state (u^{n-1} etc.).  All field-length
  // temporaries below are copy-assigns into the persistent StepScratch
  // buffers, which reuse their capacity — the attempt allocates nothing
  // once the scratch is at full size.
  std::array<std::vector<double>, 3>& un1 = scr.un1;
  std::vector<std::vector<double>>& thn1 = scr.thn1;
  for (int c = 0; c < dim_; ++c) un1[c] = u_[c];
  for (std::size_t sc = 0; sc < scalars_.size(); ++sc)
    thn1[sc] = scalars_[sc]->th;

  // ---- convective contribution -> weak rhs accumulators ----
  const int nf = dim_ + static_cast<int>(scalars_.size());
  std::vector<std::vector<double>>& rhs = scr.rhs;
  for (int f = 0; f < nf; ++f) rhs[f].assign(nl_, 0.0);

  if (opt_.convection == NsOptions::Convection::Oifs) {
    for (int q = 1; q <= order; ++q) {
      // Fields at t^{n-q}: copies that get advected to t^n.
      std::vector<std::vector<double>>& adv = scr.adv;
      std::vector<std::vector<double>*>& fptr = scr.fptr;
      std::vector<const double*>& fmask = scr.fmask;
      for (int c = 0; c < dim_; ++c) {
        adv[c] = (q == 1) ? un1[c] : uh_[q - 2][c];
        fptr[c] = &adv[c];
        fmask[c] = mask_.data();
      }
      for (std::size_t sc = 0; sc < scalars_.size(); ++sc) {
        const int f = dim_ + static_cast<int>(sc);
        adv[f] = (q == 1) ? thn1[sc] : scalars_[sc]->hist[q - 2];
        fptr[f] = &adv[f];
        fmask[f] = scalars_[sc]->mask.data();
      }
      oifs_advect(dt, q, order, base_sub, fptr, fmask);
      const double coef = cq[q - 1] / dt;
      for (int f = 0; f < nf; ++f)
        for (std::size_t i = 0; i < nl_; ++i) rhs[f][i] += coef * adv[f][i];
    }
  } else {
    // EXTk: BDF terms on the raw history + extrapolated convection.
    double gam[3] = {1.0, 0.0, 0.0};
    if (order == 2) {
      gam[0] = 2.0;
      gam[1] = -1.0;
    } else if (order == 3) {
      gam[0] = 3.0;
      gam[1] = -3.0;
      gam[2] = 1.0;
    }
    // Convection of the newest level into history slot 0 (rotated below).
    // One fused sweep advects every component and scalar with the shared
    // velocity (metrics and D matrices stream once per element).
    const double* vel[3] = {un1[0].data(), un1[1].data(),
                            dim_ == 3 ? un1[2].data() : nullptr};
    for (int c = 0; c < dim_; ++c) {
      scr.min[c] = un1[c].data();
      scr.mout[c] = ch_[0][c].data();
    }
    for (std::size_t sc = 0; sc < scalars_.size(); ++sc) {
      scr.min[dim_ + sc] = thn1[sc].data();
      scr.mout[dim_ + sc] = scalars_[sc]->hist[2].data();
    }
    convect_local_multi(m, vel, scr.min.data(), scr.mout.data(), nf, work_);
    flops_total_ += nf * convection_flops(m);
    for (int q = 1; q <= order; ++q) {
      const double coef = cq[q - 1] / dt;
      for (int c = 0; c < dim_; ++c) {
        const auto& uq = (q == 1) ? un1[c] : uh_[q - 2][c];
        for (std::size_t i = 0; i < nl_; ++i) rhs[c][i] += coef * uq[i];
      }
      for (std::size_t sc = 0; sc < scalars_.size(); ++sc) {
        const auto& tq = (q == 1) ? thn1[sc] : scalars_[sc]->hist[q - 2];
        for (std::size_t i = 0; i < nl_; ++i)
          rhs[dim_ + sc][i] += coef * tq[i];
      }
    }
    for (int q = 1; q <= order; ++q) {
      if (gam[q - 1] == 0.0) continue;
      for (int c = 0; c < dim_; ++c) {
        const auto& cc = (q == 1) ? ch_[0][c] : ch_[q - 1][c];
        for (std::size_t i = 0; i < nl_; ++i)
          rhs[c][i] -= gam[q - 1] * cc[i];
      }
      // (scalar EXT convection history kept in hist[2] for q=1 only; the
      // scalar path is primarily exercised with OIFS)
    }
  }

  // ---- forcing ----
  if (forcing_) {
    std::array<double*, 3> fp = {nullptr, nullptr, nullptr};
    for (int c = 0; c < dim_; ++c) {
      scr.f[c].assign(nl_, 0.0);
      fp[c] = scr.f[c].data();
    }
    forcing_(*this, time_ + dt, fp);
    for (int c = 0; c < dim_; ++c)
      for (std::size_t i = 0; i < nl_; ++i) rhs[c][i] += scr.f[c][i];
  }

  // ---- Helmholtz solves for u* ----
  const double h2 = beta0 / dt;
  if (!hop_ || hop_h2_ != h2) {
    hop_ = std::make_unique<HelmholtzOp>(*space_, opt_.viscosity, h2, mask_);
    hop_h2_ = h2;
  }
  HelmholtzSolveOptions hopt;
  hopt.tol = opt_.helm_tol;
  hopt.max_iter = opt_.max_iter;
  hopt.zero_guess = pol.zero_guess;
  // Weak rhs: B * rhs + D^T p (lagged pressure gradient).
  {
    std::array<std::vector<double>, 3>& gp = scr.gp;
    double* gpp[3] = {nullptr, nullptr, nullptr};
    for (int c = 0; c < dim_; ++c) {
      gp[c].assign(nl_, 0.0);
      gpp[c] = gp[c].data();
    }
    psys_->gradient_t(p_.data(), gpp);
    flops_total_ += e_apply_flops(*psys_) / 2.0;
    // All components share hop_, so the three solves run in lockstep with
    // fused operator applies (helmholtz_solve_multi); per-component
    // iterates and statuses are bitwise identical to sequential solves.
    const std::vector<double>* bcv[3];
    const std::vector<double>* rw[3];
    std::vector<double>* uo[3];
    CgResult cres[3];
    for (int c = 0; c < dim_; ++c) {
      std::vector<double>& weak = scr.weak3[c];
      for (std::size_t i = 0; i < nl_; ++i)
        weak[i] = m.bm[i] * rhs[c][i] + gp[c][i];
      if (fault_hook_)
        fault_hook_(FaultSite::HelmholtzRhs, this_step, attempt, c,
                    weak.data(), nl_);
      bcv[c] = &ubc_[c];
      rw[c] = &weak;
      uo[c] = &u_[c];
    }
    const int nfail =
        helmholtz_solve_multi(*hop_, bcv, rw, uo, dim_, hopt, work_,
                              &scr.helm, cres,
                              opt_.resilience.maxiter_is_failure);
    // Stats/flops for the components a sequential early-exit loop would
    // have reached: everything up to and including the first failure.
    for (int c = 0; c < dim_ && c <= nfail; ++c) {
      stats.helmholtz_iters[c] = cres[c].iterations;
      stats.helmholtz_status[c] = cres[c].status;
      flops_total_ += cres[c].iterations *
                      (stiffness_flops(m) + 14.0 * static_cast<double>(nl_));
    }
    if (nfail < dim_) return false;
  }

  // ---- scalar (species) transport ----
  stats.scalar_status = SolveStatus::Converged;
  for (std::size_t sc = 0; sc < scalars_.size(); ++sc) {
    auto& sd = *scalars_[sc];
    if (!sd.hop || sd.hop_h2 != h2) {
      sd.hop = std::make_unique<HelmholtzOp>(*space_, sd.diffusivity, h2,
                                             sd.mask);
      sd.hop_h2 = h2;
    }
    std::vector<double>& weak = scr.weak;
    for (std::size_t i = 0; i < nl_; ++i)
      weak[i] = m.bm[i] * rhs[dim_ + sc][i];
    auto res = helmholtz_solve(*sd.hop, sd.thbc, weak, sd.th, hopt, work_,
                               &scr.helm);
    flops_total_ += res.iterations *
                    (stiffness_flops(m) + 14.0 * static_cast<double>(nl_));
    if (solve_failed(res.status)) {
      stats.scalar_status = res.status;
      return false;
    }
    if (res.status != SolveStatus::Converged &&
        stats.scalar_status == SolveStatus::Converged)
      stats.scalar_status = res.status;
  }

  // ---- pressure correction ----
  {
    const std::size_t np = psys_->nloc();
    std::vector<double>& g = scr.g;
    std::vector<double>& dp = scr.dp;
    std::fill(dp.begin(), dp.end(), 0.0);
    const double* uu[3] = {u_[0].data(), u_[1].data(),
                           dim_ == 3 ? u_[2].data() : nullptr};
    psys_->divergence(uu, g.data());
    const double scale = -beta0 / dt;
    for (auto& v : g) v *= scale;
    if (fault_hook_)
      fault_hook_(FaultSite::PressureRhs, this_step, attempt, 0, g.data(),
                  np);

    PressureSolveOptions popt;
    popt.tol = opt_.pres_tol;
    popt.max_iter = opt_.max_iter;
    popt.mean_free = opt_.pressure_mean_free;
    popt.zero_guess = pol.zero_guess;
    std::function<void(const double*, double*)> precond;
    const bool with_schwarz = schwarz_ && pol.use_schwarz;
    if (with_schwarz) {
      precond = [this](const double* r, double* z) { schwarz_->apply(r, z); };
    } else if (schwarz_) {
      // Rung-2 fallback: diagonal (pressure-mass) scaling — spectrally
      // crude but SPD and structurally immune to a corrupted subdomain
      // or coarse solve.
      precond = [this](const double* r, double* z) {
        const auto& d = psys_->pbm();
        for (std::size_t i = 0; i < d.size(); ++i) z[i] = r[i] / d[i];
      };
    }
    auto res = solve_pressure(*psys_, precond, proj_.get(), g.data(),
                              dp.data(), popt, &scr.pres);
    stats.pressure_iters = res.cg.iterations;
    stats.pressure_status = res.cg.status;
    stats.pressure_res0 = res.res0;
    flops_total_ += res.apply_count * e_apply_flops(*psys_);
    if (with_schwarz)
      flops_total_ += res.precond_count * schwarz_->local_flops_per_apply();
    if (proj_ && !pol.zero_guess)
      flops_total_ += 4.0 * proj_->size() * static_cast<double>(np);
    if (solve_failed(res.cg.status)) return false;

    // Velocity correction and pressure update.
    std::array<std::vector<double>, 3>& gd = scr.gd;
    double* gdp[3] = {nullptr, nullptr, nullptr};
    for (int c = 0; c < dim_; ++c) {
      gd[c].assign(nl_, 0.0);
      gdp[c] = gd[c].data();
    }
    psys_->gradient_t(dp.data(), gdp);
    flops_total_ += e_apply_flops(*psys_) / 2.0;
    const auto& bmi = space_->bm_inv();
    const double corr = dt / beta0;
    for (int c = 0; c < dim_; ++c) {
      space_->gs().op(gd[c].data());
      for (std::size_t i = 0; i < nl_; ++i)
        u_[c][i] += corr * mask_[i] * bmi[i] * gd[c][i];
    }
    for (std::size_t i = 0; i < np; ++i) p_[i] += dp[i];
    if (opt_.pressure_mean_free) psys_->remove_mean(p_.data());
  }

  // ---- filter, final validation, history rotation, stats ----
  apply_velocity_filter();

  if (opt_.resilience.enabled) {
    // A solve can "converge" on finite residuals while a masked node or
    // the forcing carried NaN into the field — the last line of defense
    // before the step is committed.
    bool finite = all_finite(p_);
    for (int c = 0; finite && c < dim_; ++c) finite = all_finite(u_[c]);
    for (std::size_t sc = 0; finite && sc < scalars_.size(); ++sc)
      finite = all_finite(scalars_[sc]->th);
    if (!finite) {
      stats.nonfinite_field = true;
      return false;
    }
  }

  for (int c = 0; c < dim_; ++c) {
    uh_[1][c].swap(uh_[0][c]);
    uh_[0][c].swap(un1[c]);
  }
  for (std::size_t sc = 0; sc < scalars_.size(); ++sc) {
    scalars_[sc]->hist[1].swap(scalars_[sc]->hist[0]);
    scalars_[sc]->hist[0].swap(thn1[sc]);
  }
  if (opt_.convection == NsOptions::Convection::Ext) {
    // ch_[0] holds C(u^{n-1}) computed this step; rotate to history.
    for (int c = 0; c < dim_; ++c) {
      ch_[2][c].swap(ch_[1][c]);
      ch_[1][c].swap(ch_[0][c]);
    }
  }

  time_ += dt;
  ++nsteps_;
  stats.step = nsteps_;
  stats.time = time_;
  stats.divergence = divergence_norm();
  stats.flops = flops_total_;
  return true;
}

StepStats NavierStokes::step() {
  const obs::ScopedTimer timer("ns/step");
  const ResilienceOptions& rz = opt_.resilience;
  StepStats stats;
  double dt = opt_.dt;
  int halvings = 0;

  if (rz.enabled) {
    // Persistent rollback image: the copy-assigns inside save_snapshot
    // reuse the buffers captured on previous steps.
    if (!snap_) snap_ = std::make_unique<Snapshot>();
    save_snapshot(*snap_);
  }

  // CFL watchdog: reject a hopeless step before spending solver work.
  if (rz.enabled && rz.cfl_limit > 0.0) {
    const double rate = cfl_rate();
    while (rate * dt > rz.cfl_limit && halvings < rz.max_dt_halvings) {
      dt *= 0.5;
      ++halvings;
      stats.cfl_rejected = true;
    }
  }

  // Escalation ladder (resilience/recovery.hpp): climb the rungs at the
  // current dt, then reject and halve.  Deterministic by construction.
  AttemptPolicy pol;
  int attempt = 0;
  bool accepted = false;
  for (;;) {
    ++attempt;
    const int order =
        (halvings > 0) ? 1 : std::min(opt_.torder, ramp_ + 1);
    if (attempt_step(dt, order, pol, attempt, stats)) {
      accepted = true;
      break;
    }
    if (!rz.enabled) break;  // statuses recorded; legacy no-retry behavior
    restore_snapshot(*snap_);
    if (!pol.zero_guess) {
      // Rung 1: a poisoned warm start (previous solution / projection
      // basis) is the most common contaminant.
      pol.zero_guess = true;
      if (proj_) proj_->clear();
      stats.projection_flushed = true;
    } else if (pol.use_schwarz && schwarz_) {
      // Rung 2: preconditioner fallback.
      pol.use_schwarz = false;
      stats.precond_fallback = true;
    } else if (halvings < rz.max_dt_halvings) {
      // Rung 3: reject the step; the BDF/OIFS ramp restarts at the
      // reduced dt (order 1) because the history spacing no longer
      // matches.  Zero guesses stay; the Schwarz rung re-arms.
      ++halvings;
      dt *= 0.5;
      pol.use_schwarz = true;
    } else {
      break;  // ladder exhausted; state is rolled back
    }
  }

  stats.attempts = attempt;
  stats.dt_halvings = halvings;
  stats.dt = dt;
  stats.recovered = accepted && (attempt > 1 || stats.cfl_rejected);
  stats.failed = !accepted;
  if (accepted)
    ramp_ = (halvings > 0) ? 0 : ramp_ + 1;
  emit_step_event(stats);
  return stats;
}

NsState NavierStokes::export_state() const {
  NsState s;
  s.dim = dim_;
  s.nscalars = static_cast<std::int32_t>(scalars_.size());
  s.nlocal = nl_;
  s.npressure = psys_->nloc();
  s.step = nsteps_;
  s.order_ramp = ramp_;
  s.bc_frozen = bc_frozen_ ? 1 : 0;
  s.time = time_;
  s.dt = opt_.dt;
  s.flops_total = flops_total_;
  s.u = u_;
  s.ubc = ubc_;
  s.uh = uh_;
  s.ch = ch_;
  s.p = p_;
  s.scalars.resize(scalars_.size());
  for (std::size_t sc = 0; sc < scalars_.size(); ++sc) {
    s.scalars[sc].th = scalars_[sc]->th;
    s.scalars[sc].thbc = scalars_[sc]->thbc;
    s.scalars[sc].hist = scalars_[sc]->hist;
  }
  if (proj_) {
    s.proj_q = proj_->basis_q();
    s.proj_w = proj_->basis_w();
  }
  return s;
}

std::uint32_t NavierStokes::state_digest() const {
  const NsState s = export_state();
  std::uint32_t c = 0;
  auto mix = [&c](const void* p, std::size_t n) { c = crc32(p, n, c); };
  auto vec = [&mix](const std::vector<double>& v) {
    const std::uint64_t n = v.size();
    mix(&n, sizeof n);
    mix(v.data(), v.size() * sizeof(double));
  };
  mix(&s.dim, sizeof s.dim);
  mix(&s.nscalars, sizeof s.nscalars);
  mix(&s.step, sizeof s.step);
  mix(&s.order_ramp, sizeof s.order_ramp);
  mix(&s.bc_frozen, sizeof s.bc_frozen);
  mix(&s.time, sizeof s.time);
  mix(&s.dt, sizeof s.dt);
  mix(&s.flops_total, sizeof s.flops_total);
  for (int co = 0; co < 3; ++co) vec(s.u[co]);
  for (int co = 0; co < 3; ++co) vec(s.ubc[co]);
  for (const auto& lvl : s.uh)
    for (int co = 0; co < 3; ++co) vec(lvl[co]);
  for (const auto& lvl : s.ch)
    for (int co = 0; co < 3; ++co) vec(lvl[co]);
  vec(s.p);
  for (const auto& sc : s.scalars) {
    vec(sc.th);
    vec(sc.thbc);
    for (const auto& h : sc.hist) vec(h);
  }
  for (std::size_t i = 0; i < s.proj_q.size(); ++i) {
    vec(s.proj_q[i]);
    vec(s.proj_w[i]);
  }
  return c;
}

bool NavierStokes::import_state(const NsState& s, std::string* err) {
  auto fail = [err](const std::string& what) {
    if (err) *err = what;
    return false;
  };
  if (s.dim != dim_) return fail("state dim mismatch");
  if (s.nlocal != nl_) return fail("state velocity dof count mismatch");
  if (s.npressure != psys_->nloc())
    return fail("state pressure dof count mismatch");
  if (s.nscalars != nscalars()) return fail("state scalar count mismatch");
  if (!(s.dt > 0.0) || !std::isfinite(s.dt))
    return fail("state dt not positive finite");
  if (s.step < 0 || s.order_ramp < 0) return fail("state step index negative");
  for (int c = 0; c < dim_; ++c)
    if (s.u[c].size() != nl_ || s.ubc[c].size() != nl_)
      return fail("state velocity field size mismatch");
  for (const auto& lvl : s.uh)
    for (int c = 0; c < dim_; ++c)
      if (lvl[c].size() != nl_) return fail("state history size mismatch");
  for (const auto& lvl : s.ch)
    for (int c = 0; c < dim_; ++c)
      if (lvl[c].size() != nl_)
        return fail("state convection history size mismatch");
  if (s.p.size() != psys_->nloc()) return fail("state pressure size mismatch");
  for (const auto& sc : s.scalars) {
    if (sc.th.size() != nl_ || sc.thbc.size() != nl_)
      return fail("state scalar field size mismatch");
    for (const auto& h : sc.hist)
      if (h.size() != nl_) return fail("state scalar history size mismatch");
  }
  if (s.proj_q.size() != s.proj_w.size())
    return fail("state projection basis q/w size mismatch");
  for (std::size_t i = 0; i < s.proj_q.size(); ++i)
    if (s.proj_q[i].size() != psys_->nloc() ||
        s.proj_w[i].size() != psys_->nloc())
      return fail("state projection vector size mismatch");

  u_ = s.u;
  ubc_ = s.ubc;
  uh_ = s.uh;
  ch_ = s.ch;
  p_ = s.p;
  for (std::size_t sc = 0; sc < scalars_.size(); ++sc) {
    scalars_[sc]->th = s.scalars[sc].th;
    scalars_[sc]->thbc = s.scalars[sc].thbc;
    scalars_[sc]->hist = s.scalars[sc].hist;
  }
  if (proj_) proj_->restore_basis(s.proj_q, s.proj_w);
  nsteps_ = s.step;
  ramp_ = s.order_ramp;
  bc_frozen_ = s.bc_frozen != 0;
  time_ = s.time;
  opt_.dt = s.dt;
  flops_total_ = s.flops_total;
  // Cached operators depend on beta0/dt; invalidate so the next step
  // rebuilds them deterministically.
  hop_.reset();
  hop_h2_ = -1.0;
  for (auto& sc : scalars_) {
    sc->hop.reset();
    sc->hop_h2 = -1.0;
  }
  return true;
}

}  // namespace tsem
