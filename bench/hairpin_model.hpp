// Shared performance model for the hairpin-vortex production run
// (paper §7: K = 8168, N = 15, 27.8M velocity gridpoints, coarse grid
// n = 10142) on the simulated ASCI-Red (DESIGN.md hardware substitution).
//
// Flop counts use the same analytic kernel formulas as the live code
// (core/flops.hpp); per-step algorithmic counts (solver iterations, OIFS
// substeps) are supplied by the caller — measured from the real scaled-
// down 3D run in bench_fig8_hairpin, or the paper's reported settled
// ranges in bench_table4_scaling.  Communication uses the LogP-style
// machine model with surface-to-volume gather-scatter exchanges and the
// XXT coarse-solve tree schedule.
#pragma once

#include <cmath>
#include <vector>

#include "core/flops.hpp"
#include "sim/machine.hpp"

namespace tsem::hairpin {

// ---- pressure-iteration transient -------------------------------------

/// Impulsive-start pressure iteration count at time step `step` (0-based):
/// Fig 8's right panel shows counts starting near ~250-300 and decaying to
/// the settled 30-50 band over ~15 steps.  Single source of truth for the
/// Fig 8 and Table 4 reproductions (they must not drift apart).
inline double transient_pressure_iters(int step) {
  return 40.0 + 260.0 * std::exp(-step / 4.0);
}

/// The first nsteps of the transient profile (Table 4 runs 26 steps).
inline std::vector<double> pressure_iteration_profile(int nsteps) {
  std::vector<double> prof;
  prof.reserve(nsteps);
  for (int n = 0; n < nsteps; ++n)
    prof.push_back(transient_pressure_iters(n));
  return prof;
}

struct ProblemScale {
  int nelem = 8168;
  int order = 15;
  int coarse_n = 10142;
  [[nodiscard]] int n1() const { return order + 1; }
  [[nodiscard]] int ng() const { return order - 1; }
  [[nodiscard]] double npe() const {
    return static_cast<double>(n1()) * n1() * n1();
  }
  [[nodiscard]] double npe_p() const {
    return static_cast<double>(ng()) * ng() * ng();
  }
};

struct StepCounts {
  double pressure_iters = 40.0;   // paper: settles at 30-50
  double helmholtz_iters = 3 * 8; // sum over the three components
  double oifs_stage_evals = 2 * 3 * 4 * 4;  // q-sum x fields x RK4 x subs
};

// ---- flops ------------------------------------------------------------

inline double stiffness_flops(const ProblemScale& s) {
  const double n = s.order;
  return s.nelem * (12.0 * n * n * n * n + 15.0 * n * n * n);
}

inline double e_flops(const ProblemScale& s) {
  const double ta = tensor_apply_flops(s.ng(), s.n1(), 3);
  return s.nelem * (2.0 * 9.0 * (ta + 2.0 * s.npe_p())) +
         3.0 * s.nelem * s.npe();
}

inline double schwarz_flops(const ProblemScale& s) {
  // FDM local solves on (N+1)^3 extended grids.
  const double m = s.n1();
  return s.nelem * (12.0 * m * m * m * m + m * m * m);
}

inline double convection_flops(const ProblemScale& s) {
  const double n1 = s.n1();
  return s.nelem * (3.0 * 2.0 * n1 * s.npe() + 24.0 * s.npe());
}

/// Production-overhead calibration: the paper's hardware-counter flop
/// measurement (319 GF x 927 s / 26 steps ~ 1.14e13 flops/step) exceeds
/// the bare-kernel model by ~2.6x — convection subintegration at the
/// production CFL (~4, more RK4 stages than our default), the full
/// startup-transient Helmholtz counts, multi-field diagnostics and
/// operator setup.  This single constant is calibrated once against that
/// total; everything else in Table 4 / Fig 8 (scaling shape, single/dual
/// ratios, GFLOPS) is then predicted by the model.
constexpr double kProductionOverhead = 2.6;

inline double flops_per_step(const ProblemScale& s, const StepCounts& c) {
  const double helm =
      c.helmholtz_iters * (stiffness_flops(s) + 14.0 * s.nelem * s.npe());
  const double pres =
      c.pressure_iters *
      (e_flops(s) + schwarz_flops(s) + 12.0 * s.nelem * s.npe_p());
  const double oifs = c.oifs_stage_evals *
                      (convection_flops(s) + 6.0 * s.nelem * s.npe());
  const double misc = 30.0 * s.nelem * s.npe();  // corrections, filter, BDF
  return kProductionOverhead * (helm + pres + oifs + misc);
}

// ---- communication ----------------------------------------------------

/// Words exchanged per rank per gather-scatter of one (N+1)^3 field:
/// compact RSB partitions have ~6 (K/P)^(2/3) interface faces of
/// (N+1)^2 nodes.
inline double gs_words(const ProblemScale& s, int nranks) {
  const double kper = static_cast<double>(s.nelem) / nranks;
  return 6.0 * std::pow(kper, 2.0 / 3.0) * s.n1() * s.n1();
}

/// Analytic XXT coarse solve time — the EXTRAPOLATION tier, used only
/// where the machine is larger than the directly-partitionable range of
/// the measured tier.  Tree schedule with the paper's separator bounds
/// per level: 3 n^(1/2) words in 2D, 3 n^(2/3) in 3D; balanced local
/// mat-vec work on the O(n^(3/2)) / O(n^(4/3)) factor.
inline double analytic_coarse_time(double n, int dim, const MachineParams& m,
                                   int nranks) {
  if (nranks <= 1) return 0.0;
  int levels = 0;
  while ((1 << levels) < nranks) ++levels;
  const double sep_exp = dim == 2 ? 0.5 : 2.0 / 3.0;
  const double nnz_exp = dim == 2 ? 1.5 : 4.0 / 3.0;
  const double msg = 3.0 * std::pow(n, sep_exp);
  double t = 0.0;
  for (int l = 0; l < levels; ++l)
    t += m.msg_time(static_cast<std::int64_t>(msg));
  t *= 2.0;  // fan-in + fan-out
  t += m.compute_time(4.0 * std::pow(n, nnz_exp) / nranks);
  return t;
}

/// XXT coarse solve time of the hairpin coarse problem (3D bounds).
inline double coarse_time(const ProblemScale& s, const MachineParams& m,
                          int nranks) {
  return analytic_coarse_time(static_cast<double>(s.coarse_n), 3, m, nranks);
}

/// Row-distributed A^{-1} coarse solve (the paper's §7 counterfactual:
/// "If the A^{-1} approach were used instead, [the coarse fraction]
/// would have increased to 15%").
inline double coarse_time_ainv(const ProblemScale& s, const MachineParams& m,
                               int nranks) {
  const double n = s.coarse_n;
  return allgather_time(m, nranks, static_cast<std::int64_t>(n)) +
         m.compute_time(2.0 * n * n / nranks);
}

struct StepTime {
  double total = 0.0;
  double compute = 0.0;
  double gs = 0.0;
  double allreduce = 0.0;
  double coarse = 0.0;
};

inline StepTime time_per_step(const ProblemScale& s, const StepCounts& c,
                              const MachineParams& m, int nranks,
                              bool ainv_coarse = false) {
  StepTime t;
  t.compute = m.compute_time(flops_per_step(s, c) / nranks);
  // gather-scatters: 1 per Helmholtz iter, 3 per E apply + 2 exchanges
  // per Schwarz apply, 4 per OIFS stage... counted per field touched.
  const double ngs = c.helmholtz_iters + c.pressure_iters * 5.0 +
                     c.oifs_stage_evals + 10.0;
  // Pairwise exchanges to ~6 face neighbors per gs.
  t.gs = ngs * (6.0 * m.alpha +
                gs_words(s, nranks) * m.beta);
  // Two allreduce'd inner products per CG iteration.
  int levels = 0;
  while ((1 << levels) < nranks) ++levels;
  t.allreduce = 2.0 * (c.helmholtz_iters + c.pressure_iters) * levels *
                (m.alpha + m.beta);
  t.coarse = c.pressure_iters *
             (ainv_coarse ? coarse_time_ainv(s, m, nranks)
                          : coarse_time(s, m, nranks));
  t.total = t.compute + t.gs + t.allreduce + t.coarse;
  return t;
}

}  // namespace tsem::hairpin
