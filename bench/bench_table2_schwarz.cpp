// Table 2: additive Schwarz for the cylinder problem, N = 7, eps = 1e-5.
//
// The paper solves the first pressure system of start-up flow past a
// cylinder at Re_D = 5000 on meshes obtained by two rounds of
// quad-refinement from K = 93 elements, comparing FDM local solves
// against FEM local solves of overlap N_o = 0 (block Jacobi), 1, 3, and
// against dropping the coarse grid (A0 = 0).
//
// Substitution (DESIGN.md): the cylinder far-field mesh is replaced by a
// geometrically graded annulus (kr = 3 x kt = 31 = 93 elements) with the
// same high-aspect-ratio-near-the-body character; the system solved is
// the first pressure solve of an impulsively started uniform flow around
// the inner circle.  Expected shape: FDM iterations comparable to FEM
// N_o = 1, overlap reduces iterations (N_o = 3 < 1 < 0), FDM fastest in
// cpu, and A0 = 0 blowing up the count by several-fold, growing with K.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/timer.hpp"
#include "core/pressure.hpp"
#include "core/space.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"
#include "obs/bench_report.hpp"
#include "solver/cg.hpp"
#include "solver/precision.hpp"
#include "solver/schwarz.hpp"

namespace {

using tsem::SchwarzOptions;

struct CaseResult {
  int iters = 0;
  double cpu = 0.0;
  double setup = 0.0;
};

tsem::obs::BenchReport g_report("table2_schwarz");

void record_case(int nelem, const char* label, const CaseResult& r) {
  tsem::obs::Json& c =
      g_report.add_case(std::to_string(nelem) + "/" + label);
  c["nelem"] = nelem;
  c["config"] = label;
  c["iterations"] = r.iters;
  c["wall_seconds"] = r.cpu;
  c["setup_seconds"] = r.setup;
}

CaseResult run_case(const tsem::PressureSystem& psys,
                    const std::vector<double>& g,
                    const SchwarzOptions& sopt) {
  const std::size_t n = psys.nloc();
  tsem::Timer setup_timer;
  tsem::SchwarzPrecond prec(psys, sopt);
  const double setup = setup_timer.seconds();

  auto apply = [&](const double* x, double* y) {
    psys.apply_E(x, y);
    psys.remove_mean_plain(y);
  };
  auto dot = [n](const double* a, const double* b) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
    return s;
  };
  auto precond = [&](const double* r, double* z) {
    prec.apply(r, z);
    psys.remove_mean_plain(z);
  };
  std::vector<double> p(n, 0.0);
  tsem::CgOptions copt;
  copt.tol = 1e-5;  // the paper's eps
  copt.relative = true;
  copt.max_iter = 8000;
  copt.stall_window = 3000;  // the A0 = 0 case converges very slowly
  tsem::Timer solve_timer;
  const auto res = tsem::pcg(n, apply, precond, dot, g.data(), p.data(),
                             copt);
  CaseResult out;
  out.iters = res.iterations;
  out.cpu = solve_timer.seconds();
  out.setup = setup;
  if (!res.converged)
    std::printf("# WARNING: case did not converge (res %.2e)\n",
                res.final_residual);
  return out;
}

void run_mesh(const tsem::MeshSpec2D& spec, int order) {
  tsem::Space space(tsem::build_mesh(spec, order));
  const auto& m = space.mesh();
  // Velocity Dirichlet everywhere: cylinder (tag 0) + far field (tag 1).
  auto mask = space.make_mask(0x3);
  tsem::PressureSystem psys(space, mask);

  // Impulsive start: uniform flow U = (1, 0) away from the cylinder,
  // no-slip on the body -> first-step velocity u* = mask .* U.
  std::vector<double> ux(space.nlocal()), uy(space.nlocal(), 0.0);
  for (std::size_t i = 0; i < ux.size(); ++i) ux[i] = mask[i] * 1.0;
  std::vector<double> g(psys.nloc());
  const double* uu[2] = {ux.data(), uy.data()};
  psys.divergence(uu, g.data());
  psys.remove_mean_plain(g.data());

  SchwarzOptions fdm;  // defaults: FDM, overlap 1, coarse on
  SchwarzOptions fem0, fem1, fem3, nocoarse;
  fem0.local = fem1.local = fem3.local = SchwarzOptions::Local::FemP1;
  fem0.overlap = 0;
  fem1.overlap = 1;
  fem3.overlap = 3;
  nocoarse.use_coarse = false;  // FDM local solves, A0 = 0

  // FP32-preconditioned FDM row (DESIGN.md "Precision policy"): same
  // outer FP64 PCG, local solves + ghost staging demoted.  Read against
  // the fdm row: iterations must sit within the +2 contract.
  SchwarzOptions fdm32 = fdm;
  fdm32.precision = tsem::PrecondPrecision::Fp32;

  const auto r_fdm = run_case(psys, g, fdm);
  const auto r_fdm32 = run_case(psys, g, fdm32);
  const auto r0 = run_case(psys, g, fem0);
  const auto r1 = run_case(psys, g, fem1);
  const auto r3 = run_case(psys, g, fem3);
  const auto rnc = run_case(psys, g, nocoarse);

  record_case(m.nelem, "fdm", r_fdm);
  record_case(m.nelem, "fdm_fp32", r_fdm32);
  record_case(m.nelem, "fem_no0", r0);
  record_case(m.nelem, "fem_no1", r1);
  record_case(m.nelem, "fem_no3", r3);
  record_case(m.nelem, "a0_off", rnc);

  std::printf(
      "%6d | %5d %7.2f | %5d %7.2f | %5d %7.2f | %5d %7.2f | %5d %7.2f | "
      "%5d %7.2f\n",
      m.nelem, r_fdm.iters, r_fdm.cpu, r_fdm32.iters, r_fdm32.cpu, r0.iters,
      r0.cpu, r1.iters, r1.cpu, r3.iters, r3.cpu, rnc.iters, rnc.cpu);
}

// Preconditioner-apply throughput at order 16 (ISSUE acceptance): the
// FP32 Schwarz/FDM apply against the FP64 apply on the same coarse-mesh
// system — halved local-solve flops-width and ghost bytes should buy
// >= 1.3x applies/second.
void run_apply_throughput(int order) {
  auto spec = tsem::annulus_spec(0.5, 10.0, 3, 31, 2.5);
  tsem::Space space(tsem::build_mesh(spec, order));
  tsem::PressureSystem psys(space, space.make_mask(0x3));
  const std::size_t n = psys.nloc();
  std::vector<double> r(n), z(n);
  for (std::size_t i = 0; i < n; ++i)
    r[i] = std::sin(0.37 * static_cast<double>(i));

  // Outer-PCG iteration contract at this order: same impulsive-start
  // pressure system as run_mesh, fp64- vs fp32-preconditioned.
  std::vector<double> ux(space.nlocal()), uy(space.nlocal(), 0.0);
  {
    const auto& mask = psys.vmask();
    for (std::size_t i = 0; i < ux.size(); ++i) ux[i] = mask[i] * 1.0;
  }
  std::vector<double> g(n);
  const double* uu[2] = {ux.data(), uy.data()};
  psys.divergence(uu, g.data());
  psys.remove_mean_plain(g.data());

  auto time_apply = [&](const SchwarzOptions& sopt) {
    tsem::SchwarzPrecond prec(psys, sopt);
    prec.apply(r.data(), z.data());  // warm-up: lazy buffers, page-in
    const int reps = 40;
    tsem::Timer t;
    for (int it = 0; it < reps; ++it) prec.apply(r.data(), z.data());
    return t.seconds() / reps;
  };

  SchwarzOptions fdm;
  SchwarzOptions fdm32 = fdm;
  fdm32.precision = tsem::PrecondPrecision::Fp32;
  const double t64 = time_apply(fdm);
  const double t32 = time_apply(fdm32);
  const auto it64 = run_case(psys, g, fdm);
  const auto it32 = run_case(psys, g, fdm32);

  const std::string base = "apply_order" + std::to_string(order);
  tsem::obs::Json& c64 = g_report.add_case(base + "/fp64");
  c64["precision"] = "fp64";
  c64["order"] = order;
  c64["seconds_per_apply"] = t64;
  c64["applies_per_s"] = 1.0 / t64;
  c64["iterations"] = it64.iters;
  tsem::obs::Json& c32 = g_report.add_case(base + "/fp32");
  c32["precision"] = "fp32";
  c32["order"] = order;
  c32["seconds_per_apply"] = t32;
  c32["applies_per_s"] = 1.0 / t32;
  c32["speedup_vs_fp64"] = t64 / t32;
  c32["iterations"] = it32.iters;
  c32["extra_iterations_vs_fp64"] = it32.iters - it64.iters;
  std::printf("# precond apply, order %d: fp64 %.3f ms, fp32 %.3f ms "
              "(%.2fx); outer PCG %d vs %d iters\n",
              order, t64 * 1e3, t32 * 1e3, t64 / t32, it64.iters,
              it32.iters);
}

}  // namespace

int main() {
  std::printf("# Table 2 reproduction: additive Schwarz, N = 7, eps = 1e-5\n");
  std::printf("# (graded annulus substituting the cylinder mesh; cpu in "
              "seconds, this machine)\n");
  std::printf("%6s | %13s | %13s | %13s | %13s | %13s | %13s\n", "K", "FDM",
              "FDM fp32", "FEM No=0", "FEM No=1", "FEM No=3", "A0=0");
  std::printf("%6s | %5s %7s | %5s %7s | %5s %7s | %5s %7s | %5s %7s | "
              "%5s %7s\n",
              "", "iter", "cpu", "iter", "cpu", "iter", "cpu", "iter", "cpu",
              "iter", "cpu", "iter", "cpu");
  g_report.meta()["table"] = "Table 2";
  g_report.meta()["order"] = 7;
  g_report.meta()["tol"] = 1e-5;
  g_report.meta()["mesh"] = "graded annulus (cylinder substitute)";
  // Ambient precision policy (rows carry their own "precision" field;
  // this records what TSEM_PRECOND_FP32 would give defaulted options).
  g_report.meta()["precision_env"] =
      tsem::precond_precision_name(tsem::precond_precision_from_env());
  // Active OMP thread budget: the Schwarz local-solve loop is threaded,
  // so timings are only comparable across runs at the same setting.
#ifdef _OPENMP
  g_report.meta()["omp_max_threads"] = omp_get_max_threads();
#else
  g_report.meta()["omp_max_threads"] = 1;
#endif
  auto spec = tsem::annulus_spec(0.5, 10.0, 3, 31, 2.5);
  run_mesh(spec, 7);
  spec = tsem::quad_refine(spec);
  run_mesh(spec, 7);
  spec = tsem::quad_refine(spec);
  run_mesh(spec, 7);
  run_apply_throughput(16);
  g_report.write();
  return 0;
}
