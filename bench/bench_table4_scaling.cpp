// Table 4: total time and sustained GFLOPS for 26 timesteps of the
// hairpin run on ASCI-Red-333, single- vs dual-processor mode, std. vs
// perf. mxm kernels.
//
// Two tiers, side by side in the BENCH JSON (DESIGN.md measured vs
// modeled):
//
//   "measured"     — P <= pmax (default 256) on a REAL mesh of ~8192
//                    elements (the paper's K = 8168 bump-channel flow at
//                    a reduced polynomial order): the elements are
//                    partitioned with the production recursive spectral
//                    bisection, and the gather-scatter exchange lists,
//                    Schwarz ghost-layer volumes, and XXT coarse-solve
//                    tree schedule are measured from the real data
//                    structures by sim::ClusterSim.  Only the clock
//                    (alpha, beta, flop rate) is modeled.
//
//   "extrapolated" — P = 512/1024/2048 at the paper's full (K, N) =
//                    (8168, 15), where the per-level schedules follow the
//                    analytic separator bounds of bench/hairpin_model.hpp
//                    (the paper's own asymptotic formulas).
//
// Expected shape: near-linear speedup 512 -> 2048 (the paper loses only
// ~13% of perfect scaling), dual/single ~ 1.46x (std.) to 1.64x (perf.),
// peak sustained around 319 GF for dual perf. at P = 2048.
//
// usage: bench_table4_scaling [--order N] [--refine R] [--pmax P]
//                             [--steps S]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/hairpin_model.hpp"
#include "common/timer.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "obs/bench_report.hpp"
#include "sim/cluster.hpp"
#include "solver/cg.hpp"

namespace {

struct Config {
  int order = 4;    // polynomial order of the measured-tier mesh
  int refine = 2;   // oct-refinements of the 128-element base bump channel
  int pmax = 256;   // largest directly-partitioned machine
  int steps = 26;   // Table 4 runs 26 timesteps
};

Config parse_args(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--order")) {
      cfg.order = std::atoi(next("--order"));
    } else if (!std::strcmp(argv[i], "--refine")) {
      cfg.refine = std::atoi(next("--refine"));
    } else if (!std::strcmp(argv[i], "--pmax")) {
      cfg.pmax = std::atoi(next("--pmax"));
    } else if (!std::strcmp(argv[i], "--steps")) {
      cfg.steps = std::atoi(next("--steps"));
    } else {
      std::fprintf(stderr, "unknown arg %s\n", argv[i]);
      std::exit(2);
    }
  }
  return cfg;
}

/// What one step of the settled hairpin run executes, counted from the
/// real solver configuration: per-solve allreduces follow the documented
/// pcg dot schedule, each pressure iteration applies E (3 gs ops) and the
/// Schwarz preconditioner (billed from its own measured exchange).
tsem::StepShape step_shape(const tsem::hairpin::ProblemScale& s,
                           const tsem::hairpin::StepCounts& c) {
  using tsem::kPcgDotsPerIteration;
  using tsem::kPcgSetupDots;
  tsem::StepShape shape;
  shape.flops = tsem::hairpin::flops_per_step(s, c);
  const int pits = static_cast<int>(std::lround(c.pressure_iters));
  const int hits = static_cast<int>(std::lround(c.helmholtz_iters));
  const int oifs = static_cast<int>(std::lround(c.oifs_stage_evals));
  shape.gs_ops = hits + 3 * pits + oifs + 10;
  // One pressure solve of pits iterations + three Helmholtz solves
  // splitting hits iterations.
  shape.allreduces = kPcgSetupDots + kPcgDotsPerIteration * pits - 1 +
                     3 * (kPcgSetupDots + kPcgDotsPerIteration * (hits / 3) - 1);
  shape.schwarz_applies = pits;
  shape.coarse_solves = pits;
  return shape;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = parse_args(argc, argv);
  tsem::obs::BenchReport report("table4_scaling");
  report.meta()["table"] = "Table 4";
  report.meta()["machine"] = "ASCI-Red-333 (LogP model)";
  report.meta()["steps"] = cfg.steps;
  report.meta()["K"] = 8168;
  report.meta()["N"] = 15;
  report.meta()["pmax_measured"] = cfg.pmax;

  // 26-step iteration profile: impulsive-start transient decaying into
  // the settled 30-50 range (Fig 8's right panel); shared with the Fig 8
  // reproduction via hairpin_model.hpp.
  const std::vector<double> pressure_profile =
      tsem::hairpin::pressure_iteration_profile(cfg.steps);

  // ---- measured tier: real mesh, real partitions, real schedules ----
  // 8 x 4 x 4 = 128 base elements; two oct-refinements reach K = 8192,
  // matching the paper's K = 8168 production mesh to within 0.3%.
  auto spec = tsem::bump_channel_spec(
      tsem::linspace(0, 8, 8), tsem::linspace(0, 4, 4),
      {0.0, 0.3, 0.7, 1.2, 2.0}, 2.5, 2.0, 0.8, 0.3);
  for (int r = 0; r < cfg.refine; ++r) spec = tsem::oct_refine(spec);
  tsem::Timer setup_timer;
  const tsem::Mesh mesh = tsem::build_mesh(spec, cfg.order);
  tsem::ClusterOptions copt;
  copt.max_ranks = cfg.pmax;
  copt.schwarz_overlap = 1;
  const tsem::ClusterSim cluster(mesh, copt);
  const double setup_wall = setup_timer.seconds();
  report.meta()["measured_nelem"] = mesh.nelem;
  report.meta()["measured_order"] = cfg.order;
  report.meta()["measured_coarse_n"] =
      cluster.xxt() ? cluster.xxt()->n() : 0;
  report.meta()["measured_setup_wall_seconds"] = setup_wall;

  tsem::hairpin::ProblemScale mscale;
  mscale.nelem = mesh.nelem;
  mscale.order = cfg.order;
  mscale.coarse_n = cluster.xxt() ? cluster.xxt()->n() : mesh.nelem;

  std::printf("# Table 4 reproduction, measured tier: K=%d N=%d bump "
              "channel, RSB partitions, measured gs/Schwarz/XXT schedules "
              "(setup %.1fs)\n", mesh.nelem, cfg.order, setup_wall);
  std::printf("%6s | %10s %8s | %10s %8s | %10s %8s | %10s %8s\n", "P",
              "single/std", "GF", "dual/std", "GF", "single/perf", "GF",
              "dual/perf", "GF");
  for (int p = 8; p <= cfg.pmax; p *= 2) {
    const tsem::RankSchedule sched = cluster.schedule(p);
    std::printf("%6d |", p);
    for (const bool perf : {false, true}) {
      for (const bool dual : {false, true}) {
        const auto mach = tsem::MachineParams::asci_red(dual, perf);
        double total = 0.0, flops = 0.0;
        tsem::PhaseTimes phases;
        for (double pits : pressure_profile) {
          tsem::hairpin::StepCounts c;
          c.pressure_iters = pits;
          const tsem::StepShape shape = step_shape(mscale, c);
          const tsem::PhaseTimes t =
              tsem::cluster_step_time(sched, mach, shape);
          total += t.total();
          phases.compute += t.compute;
          phases.gs += t.gs;
          phases.allreduce += t.allreduce;
          phases.coarse += t.coarse;
          flops += shape.flops;
        }
        std::printf(" %10.1f %8.2f |", total, flops / total / 1e9);
        char cname[64];
        std::snprintf(cname, sizeof(cname), "measured/P%d/%s/%s", p,
                      dual ? "dual" : "single", perf ? "perf" : "std");
        tsem::obs::Json& jc = report.add_case(cname);
        jc["tier"] = "measured";
        jc["nodes"] = p;
        jc["dual"] = dual;
        jc["perf_mxm"] = perf;
        jc["sim_seconds"] = total;
        jc["sim_seconds_compute"] = phases.compute;
        jc["sim_seconds_gs"] = phases.gs;
        jc["sim_seconds_allreduce"] = phases.allreduce;
        jc["sim_seconds_coarse"] = phases.coarse;
        jc["flops"] = flops;
        jc["gflops_sustained"] = flops / total / 1e9;
        // Schedule provenance: the measured quantities driving the bill.
        jc["max_rank_elems"] = sched.max_rank_elems;
        jc["gs_max_send_words"] = sched.gs.max_send_words();
        jc["gs_max_neighbors"] = sched.gs.max_neighbors();
        jc["gs_total_words"] = sched.gs.total_words();
        jc["schwarz_max_send_words"] = sched.schwarz.max_send_words();
        jc["coarse_n"] = sched.coarse_n;
        jc["xxt_max_rank_nnz"] = sched.xxt_max_rank_nnz;
        tsem::obs::Json words = tsem::obs::Json::array();
        for (auto w : sched.xxt_level_words) words.push_back(w);
        jc["xxt_level_words"] = words;
      }
    }
    std::printf("\n");
  }

  // ---- extrapolated tier: the paper's full scale, analytic schedules ----
  tsem::hairpin::ProblemScale scale;
  std::printf("#\n# extrapolated tier: (K,N)=(8168,15), analytic separator "
              "bounds (hairpin_model.hpp)\n");
  std::printf("%6s | %10s %8s | %10s %8s | %10s %8s | %10s %8s\n", "P",
              "single/std", "GF", "dual/std", "GF", "single/perf", "GF",
              "dual/perf", "GF");

  for (int p : {512, 1024, 2048}) {
    std::printf("%6d |", p);
    for (const bool perf : {false, true}) {
      for (const bool dual : {false, true}) {
        const auto mach = tsem::MachineParams::asci_red(dual, perf);
        double total = 0.0, flops = 0.0;
        double t_gs = 0.0, t_allreduce = 0.0, t_coarse = 0.0;
        for (double pits : pressure_profile) {
          tsem::hairpin::StepCounts c;
          c.pressure_iters = pits;
          const auto t = tsem::hairpin::time_per_step(scale, c, mach, p);
          total += t.total;
          t_gs += t.gs;
          t_allreduce += t.allreduce;
          t_coarse += t.coarse;
          flops += tsem::hairpin::flops_per_step(scale, c);
        }
        std::printf(" %10.0f %8.0f |", total, flops / total / 1e9);
        char cname[64];
        std::snprintf(cname, sizeof(cname), "extrapolated/P%d/%s/%s", p,
                      dual ? "dual" : "single", perf ? "perf" : "std");
        tsem::obs::Json& jc = report.add_case(cname);
        jc["tier"] = "extrapolated";
        jc["nodes"] = p;
        jc["dual"] = dual;
        jc["perf_mxm"] = perf;
        jc["sim_seconds"] = total;
        jc["sim_seconds_gs"] = t_gs;
        jc["sim_seconds_allreduce"] = t_allreduce;
        jc["sim_seconds_coarse"] = t_coarse;
        jc["flops"] = flops;
        jc["gflops_sustained"] = flops / total / 1e9;
      }
    }
    std::printf("\n");
  }

  // Parallel-efficiency summary (the "shape" claims of the paper).
  std::printf("#\n# shape checks:\n");
  {
    const auto mach = tsem::MachineParams::asci_red(true, true);
    tsem::hairpin::StepCounts c;
    const double t512 = tsem::hairpin::time_per_step(scale, c, mach, 512).total;
    const double t2048 =
        tsem::hairpin::time_per_step(scale, c, mach, 2048).total;
    std::printf("#   512 -> 2048 speedup (dual perf.): %.2fx of ideal 4x "
                "(paper: ~3.9x)\n", t512 / t2048);
    report.meta()["speedup_512_to_2048"] = t512 / t2048;
  }
  {
    tsem::hairpin::StepCounts c;
    const double ts = tsem::hairpin::time_per_step(
                          scale, c, tsem::MachineParams::asci_red(false, true),
                          2048).total;
    const double td = tsem::hairpin::time_per_step(
                          scale, c, tsem::MachineParams::asci_red(true, true),
                          2048).total;
    std::printf("#   dual-processor gain at P=2048 (perf.): %.2fx "
                "(paper: 1.64x = 82%% efficiency)\n", ts / td);
  }
  report.write();
  return 0;
}
