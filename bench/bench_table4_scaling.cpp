// Table 4: total time and sustained GFLOPS for 26 timesteps of the
// hairpin run (K = 8168, N = 15) on ASCI-Red-333 at P = 512/1024/2048
// nodes, single- vs dual-processor mode, std. vs perf. mxm kernels.
//
// Fully model-driven at the paper's scale (DESIGN.md hardware
// substitution): flop counts come from the same analytic kernel formulas
// the live code uses, iteration counts follow the paper's reported
// settled behavior (pressure ~40/step after the initial transient, with
// the early-step transient of Fig 8 included), and communication uses
// the LogP machine model with surface-exchange gather-scatter and the
// XXT coarse solve.  Expected shape: near-linear speedup 512 -> 2048
// (the paper loses only ~13% of perfect scaling), dual/single ~ 1.46x
// (std.) to 1.64x (perf.), peak sustained around 319 GF for dual perf.
// at P = 2048.
#include <cstdio>
#include <vector>

#include "bench/hairpin_model.hpp"
#include "obs/bench_report.hpp"

int main() {
  tsem::obs::BenchReport report("table4_scaling");
  report.meta()["table"] = "Table 4";
  report.meta()["machine"] = "ASCI-Red-333 (LogP model)";
  report.meta()["steps"] = 26;
  report.meta()["K"] = 8168;
  report.meta()["N"] = 15;
  tsem::hairpin::ProblemScale scale;
  // 26-step iteration profile: impulsive-start transient decaying into
  // the settled 30-50 range (Fig 8's right panel).
  // The paper's Fig 8 shows the impulsive-start pressure counts starting
  // near ~250 and decaying to the settled 30-50 band over ~15 steps.
  std::vector<double> pressure_profile;
  for (int n = 0; n < 26; ++n) {
    const double transient = 260.0 * std::exp(-n / 4.0);
    pressure_profile.push_back(40.0 + transient);
  }

  std::printf("# Table 4 reproduction: total time (s) and sustained GFLOPS, "
              "26 steps, K=8168 N=15 (modeled)\n");
  std::printf("%6s | %10s %8s | %10s %8s | %10s %8s | %10s %8s\n", "P",
              "single/std", "GF", "dual/std", "GF", "single/perf", "GF",
              "dual/perf", "GF");

  for (int p : {512, 1024, 2048}) {
    std::printf("%6d |", p);
    for (const bool perf : {false, true}) {
      for (const bool dual : {false, true}) {
        const auto mach = tsem::MachineParams::asci_red(dual, perf);
        double total = 0.0, flops = 0.0;
        double t_gs = 0.0, t_allreduce = 0.0, t_coarse = 0.0;
        for (double pits : pressure_profile) {
          tsem::hairpin::StepCounts c;
          c.pressure_iters = pits;
          const auto t = tsem::hairpin::time_per_step(scale, c, mach, p);
          total += t.total;
          t_gs += t.gs;
          t_allreduce += t.allreduce;
          t_coarse += t.coarse;
          flops += tsem::hairpin::flops_per_step(scale, c);
        }
        std::printf(" %10.0f %8.0f |", total, flops / total / 1e9);
        char cname[64];
        std::snprintf(cname, sizeof(cname), "P%d/%s/%s", p,
                      dual ? "dual" : "single", perf ? "perf" : "std");
        tsem::obs::Json& jc = report.add_case(cname);
        jc["nodes"] = p;
        jc["dual"] = dual;
        jc["perf_mxm"] = perf;
        jc["sim_seconds"] = total;
        jc["sim_seconds_gs"] = t_gs;
        jc["sim_seconds_allreduce"] = t_allreduce;
        jc["sim_seconds_coarse"] = t_coarse;
        jc["flops"] = flops;
        jc["gflops_sustained"] = flops / total / 1e9;
      }
    }
    std::printf("\n");
  }

  // Parallel-efficiency summary (the "shape" claims of the paper).
  std::printf("#\n# shape checks:\n");
  {
    const auto mach = tsem::MachineParams::asci_red(true, true);
    tsem::hairpin::StepCounts c;
    const double t512 = tsem::hairpin::time_per_step(scale, c, mach, 512).total;
    const double t2048 =
        tsem::hairpin::time_per_step(scale, c, mach, 2048).total;
    std::printf("#   512 -> 2048 speedup (dual perf.): %.2fx of ideal 4x "
                "(paper: ~3.9x)\n", t512 / t2048);
  }
  {
    tsem::hairpin::StepCounts c;
    const double ts = tsem::hairpin::time_per_step(
                          scale, c, tsem::MachineParams::asci_red(false, true),
                          2048).total;
    const double td = tsem::hairpin::time_per_step(
                          scale, c, tsem::MachineParams::asci_red(true, true),
                          2048).total;
    std::printf("#   dual-processor gain at P=2048 (perf.): %.2fx "
                "(paper: 1.64x = 82%% efficiency)\n", ts / td);
  }
  report.write();
  return 0;
}
