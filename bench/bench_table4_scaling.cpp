// Table 4: total time and sustained GFLOPS for 26 timesteps of the
// hairpin run on ASCI-Red-333, single- vs dual-processor mode, std. vs
// perf. mxm kernels.
//
// Two tiers, side by side in the BENCH JSON (DESIGN.md measured vs
// modeled):
//
//   "measured"     — P <= pmax (default 256) on a REAL mesh of ~8192
//                    elements (the paper's K = 8168 bump-channel flow at
//                    a reduced polynomial order): the elements are
//                    partitioned with the production recursive spectral
//                    bisection, and the gather-scatter exchange lists,
//                    Schwarz ghost-layer volumes, and XXT coarse-solve
//                    tree schedule are measured from the real data
//                    structures by sim::ClusterSim.  Only the clock
//                    (alpha, beta, flop rate) is modeled.
//
//   "extrapolated" — P = 512/1024/2048 at the paper's full (K, N) =
//                    (8168, 15), where the per-level schedules follow the
//                    analytic separator bounds of bench/hairpin_model.hpp
//                    (the paper's own asymptotic formulas).
//
// Expected shape: near-linear speedup 512 -> 2048 (the paper loses only
// ~13% of perfect scaling), dual/single ~ 1.46x (std.) to 1.64x (perf.),
// peak sustained around 319 GF for dual perf. at P = 2048.
//
// A third tier, "executed", runs P = 2..pexec REAL forked rank processes
// (src/mp/) over the measured tier's own RSB partition: the same
// gather-scatter exchange lists, Schwarz ghost volumes, and XXT tree
// schedule move actual bytes through shared-memory channels, with
// per-phase wall timers mirroring the simulated compute / gs / allreduce
// / coarse breakdown and every result checked BITWISE against the
// single-process kernels.
//
// usage: bench_table4_scaling [--order N] [--refine R] [--pmax P]
//                             [--pexec P] [--steps S]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench/hairpin_model.hpp"
#include "common/timer.hpp"
#include "core/operators.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "mp/dist_gs.hpp"
#include "mp/dist_schwarz.hpp"
#include "mp/dist_xxt.hpp"
#include "mp/overlap.hpp"
#include "mp/runtime.hpp"
#include "obs/bench_report.hpp"
#include "sim/cluster.hpp"
#include "solver/cg.hpp"
#include "solver/schwarz.hpp"

namespace {

struct Config {
  int order = 4;    // polynomial order of the measured-tier mesh
  int refine = 2;   // oct-refinements of the 128-element base bump channel
  int pmax = 256;   // largest directly-partitioned machine
  int pexec = 4;    // largest REAL rank count for the executed tier
  int steps = 26;   // Table 4 runs 26 timesteps
};

Config parse_args(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--order")) {
      cfg.order = std::atoi(next("--order"));
    } else if (!std::strcmp(argv[i], "--refine")) {
      cfg.refine = std::atoi(next("--refine"));
    } else if (!std::strcmp(argv[i], "--pmax")) {
      cfg.pmax = std::atoi(next("--pmax"));
    } else if (!std::strcmp(argv[i], "--pexec")) {
      cfg.pexec = std::atoi(next("--pexec"));
    } else if (!std::strcmp(argv[i], "--steps")) {
      cfg.steps = std::atoi(next("--steps"));
    } else {
      std::fprintf(stderr, "unknown arg %s\n", argv[i]);
      std::exit(2);
    }
  }
  return cfg;
}

/// What one step of the settled hairpin run executes, counted from the
/// real solver configuration: per-solve allreduces follow the documented
/// pcg dot schedule, each pressure iteration applies E (3 gs ops) and the
/// Schwarz preconditioner (billed from its own measured exchange).
tsem::StepShape step_shape(const tsem::hairpin::ProblemScale& s,
                           const tsem::hairpin::StepCounts& c) {
  using tsem::kPcgDotsPerIteration;
  using tsem::kPcgSetupDots;
  tsem::StepShape shape;
  shape.flops = tsem::hairpin::flops_per_step(s, c);
  const int pits = static_cast<int>(std::lround(c.pressure_iters));
  const int hits = static_cast<int>(std::lround(c.helmholtz_iters));
  const int oifs = static_cast<int>(std::lround(c.oifs_stage_evals));
  shape.gs_ops = hits + 3 * pits + oifs + 10;
  // One pressure solve of pits iterations + three Helmholtz solves
  // splitting hits iterations.
  shape.allreduces = kPcgSetupDots + kPcgDotsPerIteration * pits - 1 +
                     3 * (kPcgSetupDots + kPcgDotsPerIteration * (hits / 3) - 1);
  shape.schwarz_applies = pits;
  shape.coarse_solves = pits;
  return shape;
}

// Channels for every neighbor pair of a dist-gs plan, both directions,
// allocated in the session arena (parent, pre-fork).
std::vector<tsem::mp::GsChannels> make_gs_channels(
    tsem::mp::MpSession& s, const tsem::mp::DistGsPlan& plan,
    std::size_t nslots) {
  std::map<std::pair<int, int>, tsem::mp::ShmChannel*> by_pair;
  for (int r = 0; r < plan.nranks; ++r) {
    const auto& rk = plan.ranks[static_cast<std::size_t>(r)];
    for (std::size_t i = 0; i < rk.nbrs.size(); ++i)
      by_pair[{r, rk.nbrs[i]}] = s.channel(rk.send_ix[i].size(), nslots);
  }
  std::vector<tsem::mp::GsChannels> out(static_cast<std::size_t>(plan.nranks));
  for (int r = 0; r < plan.nranks; ++r) {
    const auto& rk = plan.ranks[static_cast<std::size_t>(r)];
    for (int q : rk.nbrs) {
      out[static_cast<std::size_t>(r)].to.push_back(by_pair.at({r, q}));
      out[static_cast<std::size_t>(r)].from.push_back(by_pair.at({q, r}));
    }
  }
  return out;
}

std::vector<double> random_field(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<double> u(n);
  for (auto& v : u) v = dist(rng);
  return u;
}

/// Helmholtz coefficients of the executed tier's operator applies
/// (arbitrary but fixed: the bitwise checks replay them exactly).
constexpr double kH1 = 1.0;
constexpr double kH2 = 0.5;

/// One mode's outputs: critical-path phase seconds + every communicated
/// result, read back for the parent-side bitwise cross-checks.
struct ExecModeResult {
  double compute = 0, gs = 0, allreduce = 0, coarse = 0;
  int oversub = 1;
  std::vector<double> gs_out, ghost_out, z_out, x_out, dot_out;
};

/// One executed-tier run: P real rank processes run `reps` pseudo-steps
/// of the hairpin skeleton with REAL kernels — element-list Helmholtz
/// applies feeding the C0 gather-scatter, Schwarz local FDM solves fed
/// by the ghost exchange, pcg allreduce, XXT coarse solve.  Both timing
/// modes run through THIS one driver: `overlapped` only moves the
/// publish/finish calls relative to the interior-element compute (the
/// mp/overlap.hpp schedules), so serialized and overlapped timings are
/// measured from identical per-step schedules and their results are
/// bitwise equal by construction.
ExecModeResult run_exec_mode(
    const tsem::Mesh& mesh, const tsem::GhostExchange& gx,
    const tsem::mp::DistGsPlan& gs_plan, const tsem::mp::DistGhost& ghost,
    const tsem::mp::DistXxtPlan& xplan0,
    const tsem::SchwarzLocalSolver& slocal,
    const std::vector<tsem::mp::OverlapSplit>& gs_splits,
    const std::vector<tsem::mp::OverlapSplit>& sw_splits,
    const std::vector<double>& u0, const std::vector<double>& p0,
    const std::vector<double>& bvec, int p, int reps, bool overlapped) {
  using tsem::mp::Phase;
  const int n = xplan0.n;
  const std::size_t npe_press = ghost.npress_per_elem();
  const std::size_t spe =
      static_cast<std::size_t>(2 * gx.dim()) * gx.tang_slots();
  const std::size_t np_glob = static_cast<std::size_t>(mesh.nelem) * npe_press;
  const std::size_t ng_glob =
      static_cast<std::size_t>(gx.nlayers()) * gx.nslots();

  tsem::mp::MpOptions opt;
  opt.nranks = p;
  tsem::mp::MpSession session(opt);
  const auto gs_ch = make_gs_channels(session, gs_plan, 1);
  const auto sw_ch = make_gs_channels(
      session, ghost.plan(), static_cast<std::size_t>(gx.nlayers()));
  tsem::mp::DistXxtPlan xplan = xplan0;  // channels are per session
  xplan.attach_channels(session);

  double* u_shared = session.shared_doubles(gs_plan.nglobal);
  double* gs_out = session.shared_doubles(gs_plan.nglobal);
  double* p_shared = session.shared_doubles(np_glob);
  double* ghost_out = session.shared_doubles(ng_glob);
  double* z_out = session.shared_doubles(np_glob);
  double* b_shared = session.shared_doubles(static_cast<std::size_t>(n));
  double* x_out = session.shared_doubles(static_cast<std::size_t>(n));
  double* dot_out = session.shared_doubles(static_cast<std::size_t>(p));

  std::memcpy(u_shared, u0.data(), gs_plan.nglobal * sizeof(double));
  std::memcpy(p_shared, p0.data(), np_glob * sizeof(double));
  std::memcpy(b_shared, bvec.data(), bvec.size() * sizeof(double));

  std::string err;
  const bool ok = session.run(
      [&](tsem::mp::MpRank& ctx) {
        const int r = ctx.rank();
        const auto& grk = gs_plan.ranks[static_cast<std::size_t>(r)];
        const auto& srk = ghost.plan().ranks[static_cast<std::size_t>(r)];
        const auto& gsp = gs_splits[static_cast<std::size_t>(r)];
        const auto& swp = sw_splits[static_cast<std::size_t>(r)];
        const std::size_t ns = srk.nlocal;
        const std::size_t nloc_e = srk.elems.size();
        std::vector<double> u_loc(grk.nlocal);
        std::vector<double> w_loc(grk.nlocal);
        std::vector<double> p_loc(nloc_e * npe_press);
        std::vector<double> z_loc(nloc_e * npe_press);
        std::vector<double> g_loc(static_cast<std::size_t>(gx.nlayers()) * ns);
        std::vector<double> v_loc(static_cast<std::size_t>(gx.nlayers()) * ns);
        std::vector<double> lwork(slocal.work_doubles());
        std::vector<std::int32_t> geo;
        tsem::TensorWork twork;
        tsem::mp::GsScratch gs_scratch;
        tsem::mp::DistGhost::Scratch sw_scratch;
        tsem::mp::XxtScratch xxt_scratch;
        tsem::Timer t;
        // Element-sweep callbacks for the overlap drivers: translate
        // rank-local element lists to mesh (geometry) indices, then run
        // the serial element-list kernels on the rank-local blocks.
        const auto helm = [&](const std::int32_t* ls, std::size_t nn) {
          if (nn == 0) return;
          geo.resize(nn);
          for (std::size_t i = 0; i < nn; ++i) geo[i] = grk.elems[ls[i]];
          tsem::apply_helmholtz_local_elems(mesh, kH1, kH2, geo.data(), ls,
                                            nn, u_loc.data(), w_loc.data(),
                                            twork);
        };
        const auto sw_solve = [&](const std::int32_t* ls, std::size_t nn) {
          if (nn == 0) return;
          geo.resize(nn);
          for (std::size_t i = 0; i < nn; ++i) geo[i] = srk.elems[ls[i]];
          slocal.solve_elems(geo.data(), ls, nn, p_loc.data(), g_loc.data(),
                             ns, z_loc.data(), v_loc.data(), lwork.data());
        };
        for (int rep = 0; rep < reps; ++rep) {
          // Refresh the rank-local input slices (real memory traffic
          // proportional to the rank's share; inputs constant per rep so
          // every rep reproduces the same bits).
          t.reset();
          for (std::size_t l = 0; l < grk.nlocal; ++l)
            u_loc[l] = u_shared[gs_plan.global_index(r, l)];
          for (std::size_t e = 0; e < nloc_e; ++e)
            std::memcpy(p_loc.data() + e * npe_press,
                        p_shared + static_cast<std::size_t>(srk.elems[e]) *
                                       npe_press,
                        npe_press * sizeof(double));
          std::fill(z_loc.begin(), z_loc.end(), 0.0);
          ctx.phase_add(Phase::Compute, t.seconds());

          // pcg dot: plain serial sum (no reassociation), replicated
          // bitwise by the parent from the same shared doubles.
          t.reset();
          double partial = 0.0;
          for (std::size_t l = 0; l < grk.nlocal; ++l) partial += u_loc[l];
          double total = 0.0;
          if (!ctx.allreduce_sum(partial, &total)) return 1;
          dot_out[r] = total;
          ctx.phase_add(Phase::Allreduce, t.seconds());

          // Helmholtz apply + C0 gather-scatter, then Schwarz ghost
          // exchange + local FDM solves — both exchanges bill under the
          // gs phase (cluster_step_time's attribution), element sweeps
          // under compute, whichever schedule interleaves them.
          tsem::mp::OverlapTimes ot;
          if (!tsem::mp::overlapped_gs_apply(
                  grk, gsp, ctx, gs_ch[static_cast<std::size_t>(r)],
                  w_loc.data(), tsem::GsOp::Add, gs_scratch, helm,
                  overlapped, &ot))
            return 2;
          if (!tsem::mp::overlapped_ghost_exchange(
                  ghost, swp, r, ctx, sw_ch[static_cast<std::size_t>(r)],
                  p_loc.data(), g_loc.data(), sw_scratch, sw_solve,
                  overlapped, &ot))
            return 3;
          ctx.phase_add(Phase::Compute, ot.compute);
          ctx.phase_add(Phase::Gs, ot.exchange);

          // XXT coarse solve: full fan-in/fan-out tree walk.
          t.reset();
          if (!tsem::mp::dist_xxt_solve(xplan, r, ctx, b_shared, x_out,
                                        xxt_scratch))
            return 4;
          ctx.phase_add(Phase::Coarse, t.seconds());

          // Keep reps in lockstep so phase timers measure steady state.
          if (!ctx.barrier()) return 5;
        }
        for (std::size_t l = 0; l < grk.nlocal; ++l)
          gs_out[gs_plan.global_index(r, l)] = w_loc[l];
        for (std::size_t e = 0; e < nloc_e; ++e) {
          std::memcpy(z_out + static_cast<std::size_t>(srk.elems[e]) *
                                  npe_press,
                      z_loc.data() + e * npe_press,
                      npe_press * sizeof(double));
          for (int l = 0; l < gx.nlayers(); ++l)
            std::memcpy(ghost_out + static_cast<std::size_t>(l) * gx.nslots() +
                            static_cast<std::size_t>(srk.elems[e]) * spe,
                        g_loc.data() + static_cast<std::size_t>(l) * ns +
                            e * spe,
                        spe * sizeof(double));
        }
        return 0;
      },
      &err);
  if (!ok) {
    std::fprintf(stderr, "executed tier P=%d (%s) failed: %s\n", p,
                 overlapped ? "overlapped" : "serialized", err.c_str());
    std::exit(1);
  }

  ExecModeResult res;
  res.compute = session.phase_max_seconds(Phase::Compute);
  res.gs = session.phase_max_seconds(Phase::Gs);
  res.allreduce = session.phase_max_seconds(Phase::Allreduce);
  res.coarse = session.phase_max_seconds(Phase::Coarse);
  res.oversub = session.oversubscription();
  res.gs_out.assign(gs_out, gs_out + gs_plan.nglobal);
  res.ghost_out.assign(ghost_out, ghost_out + ng_glob);
  res.z_out.assign(z_out, z_out + np_glob);
  res.x_out.assign(x_out, x_out + static_cast<std::size_t>(n));
  res.dot_out.assign(dot_out, dot_out + static_cast<std::size_t>(p));
  return res;
}

/// One executed-tier machine size: run the serialized and overlapped
/// schedules back to back (one driver, two sessions over the same
/// copy-on-write plans), check every result BITWISE against the
/// single-process kernels AND against each other, and report both
/// per-phase timings plus the overlap efficiency.
void run_executed_tier(const tsem::Mesh& mesh, const tsem::ClusterSim& cluster,
                       const tsem::RankSchedule& sched, int p, int reps,
                       tsem::obs::Json& jc) {
  const tsem::GhostExchange& gx = *cluster.ghost_exchange();
  const tsem::XxtSolver& xxt = *cluster.xxt();
  const int npe = static_cast<int>(mesh.node_id.size()) / mesh.nelem;
  const int n = xxt.n();

  const tsem::mp::DistGsPlan gs_plan =
      tsem::mp::build_dist_gs(mesh.node_id, npe, sched.elem_rank, p);
  const tsem::mp::DistGhost ghost(gx, sched.elem_rank, p);
  const tsem::mp::DistXxtPlan xplan = tsem::mp::build_dist_xxt(xxt, p);
  const tsem::SchwarzLocalSolver slocal(mesh, gx.ng1(), gx.nlayers());

  // Interior/boundary element classification, per rank, per plan (the
  // operator gs and the anchor exchange have different sharing sets).
  std::vector<tsem::mp::OverlapSplit> gs_splits, sw_splits;
  for (int r = 0; r < p; ++r) {
    gs_splits.push_back(tsem::mp::classify_elements(
        gs_plan.ranks[static_cast<std::size_t>(r)], gs_plan.npe));
    sw_splits.push_back(tsem::mp::classify_elements(
        ghost.plan().ranks[static_cast<std::size_t>(r)], ghost.plan().npe));
  }

  const std::size_t npe_press = ghost.npress_per_elem();
  const std::size_t np_glob = static_cast<std::size_t>(mesh.nelem) * npe_press;
  const std::size_t ng_glob =
      static_cast<std::size_t>(gx.nlayers()) * gx.nslots();

  const auto u0 = random_field(gs_plan.nglobal, 101u + static_cast<unsigned>(p));
  const auto p0 = random_field(np_glob, 211u + static_cast<unsigned>(p));
  const auto bvec = random_field(static_cast<std::size_t>(n), 307u);

  const ExecModeResult ser =
      run_exec_mode(mesh, gx, gs_plan, ghost, xplan, slocal, gs_splits,
                    sw_splits, u0, p0, bvec, p, reps, false);
  const ExecModeResult ovl =
      run_exec_mode(mesh, gx, gs_plan, ghost, xplan, slocal, gs_splits,
                    sw_splits, u0, p0, bvec, p, reps, true);

  // ---- bitwise cross-checks against the single-process kernels ----
  // (run AFTER the forked sessions: apply_helmholtz_local is the OpenMP
  // production kernel, bitwise thread-count invariant.)
  const auto same = [](const std::vector<double>& a,
                       const std::vector<double>& b) {
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
  };

  std::vector<double> gs_ref(gs_plan.nglobal);
  {
    tsem::TensorWork twork;
    tsem::apply_helmholtz_local(mesh, kH1, kH2, u0.data(), gs_ref.data(),
                                twork);
  }
  tsem::GatherScatter(mesh.node_id).op(gs_ref.data(), tsem::GsOp::Add);
  const bool gs_bitwise = same(gs_ref, ser.gs_out);

  std::vector<double> ghost_ref(ng_glob);
  gx.exchange(p0.data(), ghost_ref.data());
  std::vector<double> z_ref(np_glob, 0.0);
  {
    std::vector<std::int32_t> all_elems(static_cast<std::size_t>(mesh.nelem));
    for (int e = 0; e < mesh.nelem; ++e)
      all_elems[static_cast<std::size_t>(e)] = e;
    std::vector<double> vout_ref(ng_glob);
    std::vector<double> lwork(slocal.work_doubles());
    slocal.solve_elems(all_elems.data(), nullptr, all_elems.size(),
                       p0.data(), ghost_ref.data(), gx.nslots(),
                       z_ref.data(), vout_ref.data(), lwork.data());
  }
  const bool sw_bitwise =
      same(ghost_ref, ser.ghost_out) && same(z_ref, ser.z_out);

  std::vector<double> x_ref(static_cast<std::size_t>(n));
  tsem::mp::dist_xxt_reference(xplan, bvec.data(), x_ref.data());
  const bool xxt_bitwise = same(x_ref, ser.x_out);
  std::vector<double> x_seq(static_cast<std::size_t>(n));
  xxt.solve(bvec.data(), x_seq.data());
  double xxt_err = 0.0;
  for (int i = 0; i < n; ++i)
    xxt_err = std::max(xxt_err, std::fabs(x_seq[static_cast<std::size_t>(i)] -
                                          ser.x_out[static_cast<std::size_t>(i)]));

  // Ascending-rank replication of the allreduce (same doubles, same
  // serial association as the rank loop).
  double dot_ref = 0.0;
  for (int r = 0; r < p; ++r) {
    double partial = 0.0;
    const auto& grk = gs_plan.ranks[static_cast<std::size_t>(r)];
    for (std::size_t l = 0; l < grk.nlocal; ++l)
      partial += u0[gs_plan.global_index(r, l)];
    dot_ref += partial;
  }
  bool dot_bitwise = true;
  for (int r = 0; r < p; ++r)
    dot_bitwise = dot_bitwise && ser.dot_out[static_cast<std::size_t>(r)] ==
                                     dot_ref;

  // Overlapped vs serialized: the tentpole guarantee, every buffer.
  const bool ovl_bitwise = same(ovl.gs_out, ser.gs_out) &&
                           same(ovl.ghost_out, ser.ghost_out) &&
                           same(ovl.z_out, ser.z_out) &&
                           same(ovl.x_out, ser.x_out) &&
                           same(ovl.dot_out, ser.dot_out);

  if (!gs_bitwise || !sw_bitwise || !xxt_bitwise || !dot_bitwise ||
      !ovl_bitwise) {
    std::fprintf(stderr,
                 "executed tier P=%d bitwise mismatch (gs=%d schwarz=%d "
                 "xxt=%d dot=%d overlap_vs_serialized=%d)\n",
                 p, gs_bitwise, sw_bitwise, xxt_bitwise, dot_bitwise,
                 ovl_bitwise);
    std::exit(1);
  }

  const double overlap_eff =
      ser.gs > 0.0 ? 1.0 - ovl.gs / ser.gs : 0.0;
  std::printf("%6d | %10.4f %10.4f %10.4f %10.4f | gs=%s schwarz=%s xxt=%s "
              "(err %.1e)\n",
              p, ser.compute, ser.gs, ser.allreduce, ser.coarse,
              gs_bitwise ? "ok" : "FAIL", sw_bitwise ? "ok" : "FAIL",
              xxt_bitwise ? "ok" : "FAIL", xxt_err);
  std::printf("%6s | %10.4f %10.4f %10.4f %10.4f | overlapped: bitwise=%s "
              "gs hidden %.0f%%\n",
              "ovl", ovl.compute, ovl.gs, ovl.allreduce, ovl.coarse,
              ovl_bitwise ? "ok" : "FAIL", 100.0 * overlap_eff);

  jc["tier"] = "executed";
  jc["nodes"] = p;
  jc["reps"] = reps;
  jc["oversubscription"] = ser.oversub;
  jc["exec_seconds_compute"] = ser.compute;
  jc["exec_seconds_gs"] = ser.gs;
  jc["exec_seconds_allreduce"] = ser.allreduce;
  jc["exec_seconds_coarse"] = ser.coarse;
  jc["exec_seconds_compute_overlapped"] = ovl.compute;
  jc["exec_seconds_gs_overlapped"] = ovl.gs;
  jc["exec_seconds_allreduce_overlapped"] = ovl.allreduce;
  jc["exec_seconds_coarse_overlapped"] = ovl.coarse;
  jc["overlap_efficiency"] = overlap_eff;
  jc["bitwise_gs"] = gs_bitwise;
  jc["bitwise_schwarz"] = sw_bitwise;
  jc["bitwise_coarse"] = xxt_bitwise;
  jc["bitwise_allreduce"] = dot_bitwise;
  jc["bitwise_overlap_vs_serialized"] = ovl_bitwise;
  jc["xxt_err_vs_sequential"] = xxt_err;
  // Executed vs billed message volumes (dist_gs.hpp explains why the
  // raw-copy executed payload dominates the profile's dedup'd count).
  std::int64_t gs_exec = 0, sw_exec = 0;
  for (int r = 0; r < p; ++r) {
    gs_exec = std::max(gs_exec, gs_plan.send_words(r));
    sw_exec = std::max(sw_exec, ghost.plan().send_words(r) *
                                    static_cast<std::int64_t>(gx.nlayers()));
  }
  jc["gs_max_send_words_executed"] = gs_exec;
  jc["gs_max_send_words_profile"] = sched.gs.max_send_words();
  jc["schwarz_max_send_words_executed"] = sw_exec;
  jc["schwarz_max_send_words_profile"] = sched.schwarz.max_send_words();
  tsem::obs::Json words = tsem::obs::Json::array();
  for (auto w : xplan.level_max_words) words.push_back(w);
  jc["xxt_level_words_executed"] = words;
}

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = parse_args(argc, argv);
  tsem::obs::BenchReport report("table4_scaling");
  report.meta()["table"] = "Table 4";
  report.meta()["machine"] = "ASCI-Red-333 (LogP model)";
  report.meta()["steps"] = cfg.steps;
  report.meta()["K"] = 8168;
  report.meta()["N"] = 15;
  report.meta()["pmax_measured"] = cfg.pmax;

  // 26-step iteration profile: impulsive-start transient decaying into
  // the settled 30-50 range (Fig 8's right panel); shared with the Fig 8
  // reproduction via hairpin_model.hpp.
  const std::vector<double> pressure_profile =
      tsem::hairpin::pressure_iteration_profile(cfg.steps);

  // ---- measured tier: real mesh, real partitions, real schedules ----
  // 8 x 4 x 4 = 128 base elements; two oct-refinements reach K = 8192,
  // matching the paper's K = 8168 production mesh to within 0.3%.
  auto spec = tsem::bump_channel_spec(
      tsem::linspace(0, 8, 8), tsem::linspace(0, 4, 4),
      {0.0, 0.3, 0.7, 1.2, 2.0}, 2.5, 2.0, 0.8, 0.3);
  for (int r = 0; r < cfg.refine; ++r) spec = tsem::oct_refine(spec);
  tsem::Timer setup_timer;
  const tsem::Mesh mesh = tsem::build_mesh(spec, cfg.order);
  tsem::ClusterOptions copt;
  copt.max_ranks = cfg.pmax;
  copt.schwarz_overlap = 1;
  const tsem::ClusterSim cluster(mesh, copt);
  const double setup_wall = setup_timer.seconds();
  report.meta()["measured_nelem"] = mesh.nelem;
  report.meta()["measured_order"] = cfg.order;
  report.meta()["measured_coarse_n"] =
      cluster.xxt() ? cluster.xxt()->n() : 0;
  report.meta()["measured_setup_wall_seconds"] = setup_wall;

  tsem::hairpin::ProblemScale mscale;
  mscale.nelem = mesh.nelem;
  mscale.order = cfg.order;
  mscale.coarse_n = cluster.xxt() ? cluster.xxt()->n() : mesh.nelem;

  std::printf("# Table 4 reproduction, measured tier: K=%d N=%d bump "
              "channel, RSB partitions, measured gs/Schwarz/XXT schedules "
              "(setup %.1fs)\n", mesh.nelem, cfg.order, setup_wall);
  std::printf("%6s | %10s %8s | %10s %8s | %10s %8s | %10s %8s\n", "P",
              "single/std", "GF", "dual/std", "GF", "single/perf", "GF",
              "dual/perf", "GF");
  for (int p = 8; p <= cfg.pmax; p *= 2) {
    const tsem::RankSchedule sched = cluster.schedule(p);
    std::printf("%6d |", p);
    for (const bool perf : {false, true}) {
      for (const bool dual : {false, true}) {
        const auto mach = tsem::MachineParams::asci_red(dual, perf);
        double total = 0.0, flops = 0.0;
        tsem::PhaseTimes phases;
        for (double pits : pressure_profile) {
          tsem::hairpin::StepCounts c;
          c.pressure_iters = pits;
          const tsem::StepShape shape = step_shape(mscale, c);
          const tsem::PhaseTimes t =
              tsem::cluster_step_time(sched, mach, shape);
          total += t.total();
          phases.compute += t.compute;
          phases.gs += t.gs;
          phases.allreduce += t.allreduce;
          phases.coarse += t.coarse;
          flops += shape.flops;
        }
        std::printf(" %10.1f %8.2f |", total, flops / total / 1e9);
        char cname[64];
        std::snprintf(cname, sizeof(cname), "measured/P%d/%s/%s", p,
                      dual ? "dual" : "single", perf ? "perf" : "std");
        tsem::obs::Json& jc = report.add_case(cname);
        jc["tier"] = "measured";
        jc["nodes"] = p;
        jc["dual"] = dual;
        jc["perf_mxm"] = perf;
        jc["sim_seconds"] = total;
        jc["sim_seconds_compute"] = phases.compute;
        jc["sim_seconds_gs"] = phases.gs;
        jc["sim_seconds_allreduce"] = phases.allreduce;
        jc["sim_seconds_coarse"] = phases.coarse;
        jc["flops"] = flops;
        jc["gflops_sustained"] = flops / total / 1e9;
        // Schedule provenance: the measured quantities driving the bill.
        jc["max_rank_elems"] = sched.max_rank_elems;
        jc["gs_max_send_words"] = sched.gs.max_send_words();
        jc["gs_max_neighbors"] = sched.gs.max_neighbors();
        jc["gs_total_words"] = sched.gs.total_words();
        jc["schwarz_max_send_words"] = sched.schwarz.max_send_words();
        jc["coarse_n"] = sched.coarse_n;
        jc["xxt_max_rank_nnz"] = sched.xxt_max_rank_nnz;
        tsem::obs::Json words = tsem::obs::Json::array();
        for (auto w : sched.xxt_level_words) words.push_back(w);
        jc["xxt_level_words"] = words;
      }
    }
    std::printf("\n");
  }

  // ---- executed tier: real forked ranks over the measured partition ----
  const int pexec = std::min(cfg.pexec, cfg.pmax);
  report.meta()["pexec"] = pexec;
  if (pexec >= 2 && cluster.xxt() && cluster.ghost_exchange()) {
    const int reps = 2;
    std::printf("#\n# executed tier: P real forked rank processes, shm "
                "channels, %d steps of the communication skeleton "
                "(wall seconds, bitwise-checked)\n", reps);
    std::printf("%6s | %10s %10s %10s %10s |\n", "P", "compute", "gs",
                "allreduce", "coarse");
    for (int p = 2; p <= pexec; p *= 2) {
      const tsem::RankSchedule sched = cluster.schedule(p);
      char cname[64];
      std::snprintf(cname, sizeof(cname), "executed/P%d", p);
      run_executed_tier(mesh, cluster, sched, p, reps,
                        report.add_case(cname));
    }
  }

  // ---- extrapolated tier: the paper's full scale, analytic schedules ----
  tsem::hairpin::ProblemScale scale;
  std::printf("#\n# extrapolated tier: (K,N)=(8168,15), analytic separator "
              "bounds (hairpin_model.hpp)\n");
  std::printf("%6s | %10s %8s | %10s %8s | %10s %8s | %10s %8s\n", "P",
              "single/std", "GF", "dual/std", "GF", "single/perf", "GF",
              "dual/perf", "GF");

  for (int p : {512, 1024, 2048}) {
    std::printf("%6d |", p);
    for (const bool perf : {false, true}) {
      for (const bool dual : {false, true}) {
        const auto mach = tsem::MachineParams::asci_red(dual, perf);
        double total = 0.0, flops = 0.0;
        double t_gs = 0.0, t_allreduce = 0.0, t_coarse = 0.0;
        for (double pits : pressure_profile) {
          tsem::hairpin::StepCounts c;
          c.pressure_iters = pits;
          const auto t = tsem::hairpin::time_per_step(scale, c, mach, p);
          total += t.total;
          t_gs += t.gs;
          t_allreduce += t.allreduce;
          t_coarse += t.coarse;
          flops += tsem::hairpin::flops_per_step(scale, c);
        }
        std::printf(" %10.0f %8.0f |", total, flops / total / 1e9);
        char cname[64];
        std::snprintf(cname, sizeof(cname), "extrapolated/P%d/%s/%s", p,
                      dual ? "dual" : "single", perf ? "perf" : "std");
        tsem::obs::Json& jc = report.add_case(cname);
        jc["tier"] = "extrapolated";
        jc["nodes"] = p;
        jc["dual"] = dual;
        jc["perf_mxm"] = perf;
        jc["sim_seconds"] = total;
        jc["sim_seconds_gs"] = t_gs;
        jc["sim_seconds_allreduce"] = t_allreduce;
        jc["sim_seconds_coarse"] = t_coarse;
        jc["flops"] = flops;
        jc["gflops_sustained"] = flops / total / 1e9;
      }
    }
    std::printf("\n");
  }

  // Parallel-efficiency summary (the "shape" claims of the paper).
  std::printf("#\n# shape checks:\n");
  {
    const auto mach = tsem::MachineParams::asci_red(true, true);
    tsem::hairpin::StepCounts c;
    const double t512 = tsem::hairpin::time_per_step(scale, c, mach, 512).total;
    const double t2048 =
        tsem::hairpin::time_per_step(scale, c, mach, 2048).total;
    std::printf("#   512 -> 2048 speedup (dual perf.): %.2fx of ideal 4x "
                "(paper: ~3.9x)\n", t512 / t2048);
    report.meta()["speedup_512_to_2048"] = t512 / t2048;
  }
  {
    tsem::hairpin::StepCounts c;
    const double ts = tsem::hairpin::time_per_step(
                          scale, c, tsem::MachineParams::asci_red(false, true),
                          2048).total;
    const double td = tsem::hairpin::time_per_step(
                          scale, c, tsem::MachineParams::asci_red(true, true),
                          2048).total;
    std::printf("#   dual-processor gain at P=2048 (perf.): %.2fx "
                "(paper: 1.64x = 82%% efficiency)\n", ts / td);
  }
  report.write();
  return 0;
}
