// Fig 4: pressure iteration count (left) and residual-before-iteration
// (right) versus timestep, with and without projection onto previous
// solutions.
//
// The paper uses the buoyancy-driven spherical convection problem of
// Fig 1 (K = 7680, N = 7, 1.65M pressure dof, L = 26; quasi-steady buoyant
// convection).  Substitution
// (DESIGN.md): a 2D Rayleigh-Benard cell with the same Boussinesq physics
// at laptop scale (K = 128, N = 7), the identical solver stack, and the
// same projection window L = 26.  Expected shape: iterations reduced by a
// factor ~2.5-5x over L = 0, and the pre-iteration residual lowered by
// ~2.5 orders of magnitude once the basis is warm.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/timer.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"
#include "obs/bench_report.hpp"

namespace {

struct Series {
  std::vector<int> iters;
  std::vector<double> res0;
};

Series run(int proj_len, int nsteps) {
  const double ra = 2e4, pr = 0.71;  // mildly supercritical: quasi-steady roll
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 4, 16),
                                tsem::linspace(0, 1, 8));
  tsem::Space space(tsem::build_mesh(spec, 7));
  const auto& m = space.mesh();

  tsem::NsOptions opt;
  opt.dt = 2e-3;
  opt.viscosity = pr;
  opt.pres_tol = 1e-5;  // the paper's production eps
  opt.proj_len = proj_len;
  opt.filter_alpha = 0.05;
  const std::uint32_t walls = 0xF;
  tsem::NavierStokes ns(space, walls, opt);
  ns.add_scalar((1u << tsem::kFaceYLo) | (1u << tsem::kFaceYHi), 1.0);
  for (std::size_t i = 0; i < space.nlocal(); ++i)
    ns.scalar()[i] = 1.0 - m.y[i] +
                     0.02 * std::sin(M_PI * m.y[i]) *
                         std::cos(2.4 * m.x[i]) +
                     0.013 * std::sin(M_PI * m.y[i]) * std::sin(1.7 * m.x[i]);
  ns.set_forcing([ra, pr, &space](const tsem::NavierStokes& flow, double,
                                  const std::array<double*, 3>& f) {
    const auto& theta = flow.scalar();
    for (std::size_t i = 0; i < space.nlocal(); ++i)
      f[1][i] += ra * pr * theta[i];
  });

  Series s;
  for (int n = 0; n < nsteps; ++n) {
    const auto st = ns.step();
    s.iters.push_back(st.pressure_iters);
    s.res0.push_back(st.pressure_res0);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const int nsteps = argc > 1 ? std::atoi(argv[1]) : 120;
  std::printf("# Fig 4 reproduction: pressure projection, L = 26 vs L = 0\n");
  std::printf("# Rayleigh-Benard substitute (see DESIGN.md), K = 128, N = 7, "
              "%d steps\n", nsteps);
  tsem::obs::BenchReport report("fig4_projection");
  report.meta()["figure"] = "Fig 4";
  report.meta()["steps"] = nsteps;
  report.meta()["K"] = 128;
  report.meta()["N"] = 7;
  tsem::Timer t26;
  const auto with = run(26, nsteps);
  const double wall26 = t26.seconds();
  tsem::Timer t0;
  const auto without = run(0, nsteps);
  const double wall0 = t0.seconds();

  std::printf("%6s %10s %12s %10s %12s\n", "step", "it(L=26)", "res0(L=26)",
              "it(L=0)", "res0(L=0)");
  for (int n = 0; n < nsteps; ++n) {
    std::printf("%6d %10d %12.3e %10d %12.3e\n", n + 1, with.iters[n],
                with.res0[n], without.iters[n], without.res0[n]);
  }

  // Summary over the settled second half.
  auto avg = [&](const std::vector<int>& v) {
    double s = 0.0;
    for (std::size_t i = v.size() / 2; i < v.size(); ++i) s += v[i];
    return s / (v.size() - v.size() / 2);
  };
  auto avg_res = [&](const std::vector<double>& v) {
    double s = 0.0;
    for (std::size_t i = v.size() / 2; i < v.size(); ++i) s += v[i];
    return s / (v.size() - v.size() / 2);
  };
  const double i26 = avg(with.iters), i0 = avg(without.iters);
  std::printf("#\n# settled average iterations: L=26: %.1f  L=0: %.1f  "
              "(reduction factor %.2fx; paper reports 2.5-5x)\n",
              i26, i0, i0 / i26);
  std::printf("# settled average pre-iteration residual: L=26: %.3e  "
              "L=0: %.3e  (%.1f orders; paper reports ~2.5)\n",
              avg_res(with.res0), avg_res(without.res0),
              std::log10(avg_res(without.res0) / avg_res(with.res0)));

  auto record_series = [&](const char* tag, const Series& s, int L,
                           double wall) {
    tsem::obs::Json& c = report.add_case(tag);
    c["proj_len"] = L;
    c["wall_seconds"] = wall;
    c["settled_avg_iters"] = avg(s.iters);
    c["settled_avg_res0"] = avg_res(s.res0);
    tsem::obs::Json it = tsem::obs::Json::array();
    tsem::obs::Json r0 = tsem::obs::Json::array();
    for (int n = 0; n < nsteps; ++n) {
      it.push_back(s.iters[n]);
      r0.push_back(s.res0[n]);
    }
    c["iters"] = std::move(it);
    c["res0"] = std::move(r0);
  };
  record_series("L26", with, 26, wall26);
  record_series("L0", without, 0, wall0);
  report.meta()["iter_reduction"] = i0 / i26;
  report.write();
  return 0;
}
