// Table 3: MFLOPS for the (n1 x n2) x (n2 x n3) matrix-matrix product
// kernels in the calling configurations of an order N = 15 simulation
// (N1 = 16, N2 = 14; see paper §6).
//
// Kernel mapping (DESIGN.md substitution for the vendor libraries):
//   lkm -> mxm_generic (stock portable kernel)
//   csm -> mxm_blocked (cache-blocked library variant)
//   ghm -> mxm_fixed   (fully compile-time-specialized, n2 <= 20)
//   f2, f3             (the paper's hand-unrolled kernels, as published)
//
// The data is flushed between iterations groups only by working-set
// rotation (the paper notes all mxm timing data is noncached; we rotate
// among many operand copies to defeat the cache similarly).
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <random>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "obs/bench_report.hpp"
#include "obs/metrics.hpp"
#include "tensor/kernels_avx512.hpp"
#include "tensor/kernels_fixed.hpp"
#include "tensor/kernels_simd.hpp"
#include "tensor/mxm.hpp"

namespace {

struct Shape {
  int n1, n2, n3;
};

// The ten calling configurations of paper Table 3.
const Shape kShapes[] = {
    {14, 2, 14},  {2, 14, 2},   {16, 14, 16}, {16, 14, 196}, {256, 14, 16},
    {14, 16, 14}, {16, 16, 16}, {16, 16, 256}, {196, 16, 14}, {256, 16, 16}};

using KernelFn = void (*)(const double*, int, const double*, int, double*,
                          int);

// Compile-time-specialized kernels ("ghm") for exactly the table shapes.
template <int M, int K, int N>
void fixed_kernel(const double* a, int, const double* b, int, double* c,
                  int) {
  tsem::mxm_fixed<M, K, N>(a, b, c);
}

KernelFn fixed_for(const Shape& s) {
  if (s.n1 == 14 && s.n2 == 2 && s.n3 == 14) return fixed_kernel<14, 2, 14>;
  if (s.n1 == 2 && s.n2 == 14 && s.n3 == 2) return fixed_kernel<2, 14, 2>;
  if (s.n1 == 16 && s.n2 == 14 && s.n3 == 16) return fixed_kernel<16, 14, 16>;
  if (s.n1 == 16 && s.n2 == 14 && s.n3 == 196)
    return fixed_kernel<16, 14, 196>;
  if (s.n1 == 256 && s.n2 == 14 && s.n3 == 16)
    return fixed_kernel<256, 14, 16>;
  if (s.n1 == 14 && s.n2 == 16 && s.n3 == 14) return fixed_kernel<14, 16, 14>;
  if (s.n1 == 16 && s.n2 == 16 && s.n3 == 16) return fixed_kernel<16, 16, 16>;
  if (s.n1 == 16 && s.n2 == 16 && s.n3 == 256)
    return fixed_kernel<16, 16, 256>;
  if (s.n1 == 196 && s.n2 == 16 && s.n3 == 14)
    return fixed_kernel<196, 16, 14>;
  return fixed_kernel<256, 16, 16>;
}

// Rotate among enough operand copies that successive iterations miss in
// cache (the paper's "noncached" measurement condition).
struct OperandPool {
  OperandPool(const Shape& s, std::size_t bytes_target) {
    const std::size_t per = static_cast<std::size_t>(s.n1) * s.n2 +
                            static_cast<std::size_t>(s.n2) * s.n3 +
                            static_cast<std::size_t>(s.n1) * s.n3;
    copies = std::max<std::size_t>(2, bytes_target / (per * 8));
    a.resize(copies * s.n1 * s.n2);
    b.resize(copies * s.n2 * s.n3);
    c.resize(copies * s.n1 * s.n3);
    std::mt19937 rng(42);
    std::uniform_real_distribution<double> dist(-1, 1);
    for (auto& v : a) v = dist(rng);
    for (auto& v : b) v = dist(rng);
  }
  std::size_t copies;
  std::vector<double> a, b, c;
};

void run_kernel(benchmark::State& state, const Shape& s, KernelFn kern) {
  OperandPool pool(s, 64u << 20);  // ~64 MiB working set
  std::size_t i = 0;
  for (auto _ : state) {
    const double* pa =
        pool.a.data() + i * static_cast<std::size_t>(s.n1) * s.n2;
    const double* pb =
        pool.b.data() + i * static_cast<std::size_t>(s.n2) * s.n3;
    double* pc = pool.c.data() + i * static_cast<std::size_t>(s.n1) * s.n3;
    kern(pa, s.n1, pb, s.n2, pc, s.n3);
    benchmark::DoNotOptimize(pc[0]);
    i = (i + 1) % pool.copies;
  }
  const double flops = 2.0 * s.n1 * s.n2 * s.n3;
  state.counters["MFLOPS"] = benchmark::Counter(
      flops * 1e-6, benchmark::Counter::kIsIterationInvariantRate);
}

// Console output stays the stock google-benchmark table; this reporter
// additionally captures each run for the BENCH_table3_mxm.json report.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(tsem::obs::BenchReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      tsem::obs::Json& c = report_->add_case(run.benchmark_name());
      c["iterations"] = static_cast<std::int64_t>(run.iterations);
      c["wall_seconds"] = run.GetAdjustedRealTime() * 1e-9;  // per iteration
      auto it = run.counters.find("MFLOPS");
      if (it != run.counters.end()) c["mflops"] = it->second.value;
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  tsem::obs::BenchReport* report_;
};

}  // namespace

int main(int argc, char** argv) {
  struct Named {
    std::string name;
    KernelFn fn;
  };
  // Build the dispatch table up front so the "tuned" rows and the meta
  // selection digest reflect the table every library call uses.
  tsem::mxm_autotune_init();
  std::string kernel_list = "lkm csm ghm f3 f2";
  for (const auto& s : kShapes) {
    std::vector<Named> kernels = {{"lkm", tsem::mxm_generic},
                                  {"csm", tsem::mxm_blocked},
                                  {"ghm", fixed_for(s)},
                                  {"f3", tsem::mxm_f3},
                                  {"f2", tsem::mxm_f2}};
    // SIMD variants ride along whenever compiled in AND runnable here.
    for (const auto& v : tsem::mxm_registry())
      if (v.simd) kernels.push_back({v.name, v.fn});
    // The autotuned dispatch entry the library actually calls through.
    kernels.push_back({"tuned", +[](const double* a, int m, const double* b,
                                    int k, double* c, int n) {
                         tsem::mxm(a, m, b, k, c, n);
                       }});
    if (&s == kShapes) {  // extend the meta list once
      for (std::size_t i = 5; i < kernels.size(); ++i)
        kernel_list += " " + kernels[i].name;
    }
    for (const auto& k : kernels) {
      char name[64];
      std::snprintf(name, sizeof(name), "mxm/%dx%dx%d/%s", s.n1, s.n2, s.n3,
                    k.name.c_str());
      benchmark::RegisterBenchmark(
          name, [s, fn = k.fn](benchmark::State& st) { run_kernel(st, s, fn); });
    }
  }
  // Fixed-order tier rows (ISSUE acceptance): the registry "fixed"
  // variant against the stock generic kernel and the autotuned dispatch
  // on the cube shapes of orders N = 8..16 (the tensor middle stages),
  // single-threaded like every other row here.  SIMD variants ride along
  // as above so avx512-vs-fixed is directly readable off one report.
  for (int d = 8; d <= 16; ++d) {
    const Shape s{d, d, d};
    std::vector<Named> kernels = {{"fixed", tsem::mxm_fixed_dispatch},
                                  {"lkm", tsem::mxm_generic}};
    for (const auto& v : tsem::mxm_registry())
      if (v.simd) kernels.push_back({v.name, v.fn});
    kernels.push_back({"tuned", +[](const double* a, int m, const double* b,
                                    int k, double* c, int n) {
                         tsem::mxm(a, m, b, k, c, n);
                       }});
    for (const auto& k : kernels) {
      char name[64];
      std::snprintf(name, sizeof(name), "mxm_order/%dx%dx%d/%s", d, d, d,
                    k.name.c_str());
      benchmark::RegisterBenchmark(
          name, [s, fn = k.fn](benchmark::State& st) { run_kernel(st, s, fn); });
    }
  }
  tsem::obs::BenchReport report("table3_mxm");
  report.meta()["table"] = "Table 3";
  report.meta()["kernels"] = kernel_list;
  report.meta()["obs_enabled"] = tsem::obs::enabled();
  // SIMD/autotuner provenance: which ISA the binary saw, whether the
  // AVX2 family was compiled in, and which variant the tuner installed
  // for each Table 3 calling configuration.
  report.meta()["simd_compiled"] = tsem::simd_compiled();
  report.meta()["simd_available"] = tsem::simd_available();
  report.meta()["isa"] = tsem::simd_isa_name();
  // What the machine running the bench actually supports, independent of
  // what this binary was compiled with — reports from different hosts
  // stay comparable.
  report.meta()["isa_runtime"] = tsem::mxm_isa_runtime_name();
  report.meta()["avx512_compiled"] = tsem::avx512_compiled();
  report.meta()["avx512_available"] = tsem::avx512_available();
  for (const auto& s : kShapes) {
    char label[32];
    std::snprintf(label, sizeof(label), "%dx%dx%d", s.n1, s.n2, s.n3);
    report.meta()["selected"][label] =
        tsem::mxm_selected_name(s.n1, s.n2, s.n3);
  }
  // The mxm kernels themselves are serial, but recording the thread
  // budget keeps reports self-describing alongside the threaded benches.
#ifdef _OPENMP
  report.meta()["omp_max_threads"] = omp_get_max_threads();
#else
  report.meta()["omp_max_threads"] = 1;
#endif
  benchmark::Initialize(&argc, argv);
  CapturingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  report.write();
  return 0;
}
