// Fig 3: high Reynolds number shear layer roll-up at different (K, N)
// pairings with and without filter-based stabilization.
//
// Cases (paper Fig 3):
//   (a) thick layer (rho = 30, Re = 1e5), 16x16, N = 16, alpha = 0
//       -> blows up ("we are unable to simulate this problem at any
//       reasonable resolution" without filtering)
//   (b) same, alpha = 0.3                     -> stable roll-up
//   (c) 16x16, N = 8, alpha = 1.0             -> stable but overdamped
//   (d) 16x16, N = 8, alpha = 0.3             -> stable, preferred
//   (e) thin layer (rho = 100, Re = 4e4), 32x32, N = 8, alpha = 0.3
//       -> spurious vortices at this resolution
//   (f) thin layer, 16x16, N = 16, alpha = 0.3 -> clean (high order wins
//       at fixed resolution n = 256)
//
// We report stability, kinetic energy, enstrophy and max vorticity at the
// final time and write a vorticity CSV per case for contour plotting.
// The figure's qualitative content maps to: (a) diverges; (b,d,f) finite
// with max|omega| near the initial rho; (c) loses noticeably more energy
// than (d); (e) shows higher palinstrophy (small-scale noise) than (f).
//
// usage: bench_fig3_shear_layer [--quick] (quick: shorter time, smaller K)
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "core/operators.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"
#include "obs/bench_report.hpp"

namespace {

struct Case {
  const char* tag;
  double rho, re;
  int k1d, order;
  double alpha;
};

struct Metrics {
  bool stable = false;
  double t_end = 0.0;
  double ke = 0.0, enstrophy = 0.0, palinstrophy = 0.0, max_w = 0.0;
};

void vorticity(const tsem::NavierStokes& ns, std::vector<double>& wz) {
  const auto& space = ns.space();
  const auto& m = space.mesh();
  std::vector<double> gx(space.nlocal()), gy(space.nlocal());
  double* grad[2] = {gx.data(), gy.data()};
  tsem::TensorWork work;
  tsem::gradient_local(m, ns.u(1).data(), grad, work);
  wz = gx;
  tsem::gradient_local(m, ns.u(0).data(), grad, work);
  for (std::size_t i = 0; i < wz.size(); ++i) wz[i] -= gy[i];
}

Metrics run_case(const Case& c, double tfinal, bool write_csv) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, c.k1d),
                                tsem::linspace(0, 1, c.k1d));
  spec.periodic_x = spec.periodic_y = true;
  tsem::Space space(tsem::build_mesh(spec, c.order));
  const auto& m = space.mesh();

  tsem::NsOptions opt;
  opt.dt = 0.002;
  opt.viscosity = 1.0 / c.re;
  opt.filter_alpha = c.alpha;
  opt.pres_tol = 1e-6;
  opt.proj_len = 12;
  tsem::NavierStokes ns(space, 0u, opt);
  for (std::size_t i = 0; i < space.nlocal(); ++i) {
    const double y = m.y[i];
    ns.u(0)[i] = (y <= 0.5) ? std::tanh(c.rho * (y - 0.25))
                            : std::tanh(c.rho * (0.75 - y));
    ns.u(1)[i] = 0.05 * std::sin(2.0 * M_PI * m.x[i]);
  }

  Metrics out;
  const int nsteps = static_cast<int>(tfinal / opt.dt + 0.5);
  for (int n = 1; n <= nsteps; ++n) {
    ns.step();
    const double ke = ns.kinetic_energy();
    out.t_end = ns.time();
    if (!std::isfinite(ke) || ke > 10.0 * space.volume()) {
      out.stable = false;
      return out;  // blow-up
    }
  }
  out.stable = true;
  out.ke = ns.kinetic_energy();

  std::vector<double> wz;
  vorticity(ns, wz);
  for (std::size_t i = 0; i < wz.size(); ++i) {
    out.max_w = std::max(out.max_w, std::fabs(wz[i]));
    out.enstrophy += 0.5 * m.bm[i] * wz[i] * wz[i];
  }
  // Palinstrophy = 0.5 int |grad omega|^2 — a sensitive small-scale-noise
  // diagnostic (spurious vortices in case (e) raise it).
  std::vector<double> gx(space.nlocal()), gy(space.nlocal());
  double* grad[2] = {gx.data(), gy.data()};
  tsem::TensorWork work;
  space.daverage(wz.data());
  tsem::gradient_local(m, wz.data(), grad, work);
  for (std::size_t i = 0; i < wz.size(); ++i)
    out.palinstrophy += 0.5 * m.bm[i] * (gx[i] * gx[i] + gy[i] * gy[i]);

  if (write_csv) {
    std::string path = std::string("fig3_") + c.tag + "_vorticity.csv";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f) {
      std::fprintf(f, "x,y,omega\n");
      for (std::size_t i = 0; i < wz.size(); ++i)
        std::fprintf(f, "%.5f,%.5f,%.5e\n", m.x[i], m.y[i], wz[i]);
      std::fclose(f);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const double tfinal = quick ? 0.2 : 1.2;
  const int kf = quick ? 2 : 1;  // mesh reduction factor in quick mode

  const Case cases[] = {
      {"a", 30.0, 1e5, 16 / kf, 16, 0.0},
      {"b", 30.0, 1e5, 16 / kf, 16, 0.3},
      {"c", 30.0, 1e5, 16 / kf, 8, 1.0},
      {"d", 30.0, 1e5, 16 / kf, 8, 0.3},
      {"e", 100.0, 4e4, 32 / kf, 8, 0.3},
      {"f", 100.0, 4e4, 16 / kf, 16, 0.3},
  };

  std::printf("# Fig 3 reproduction: shear layer roll-up, dt = 0.002, "
              "t_final = %.2f%s\n", tfinal, quick ? " (--quick)" : "");
  std::printf("%4s %6s %8s %4s %3s %6s | %8s %10s %12s %12s %10s\n", "case",
              "rho", "Re", "K1d", "N", "alpha", "stable", "KE", "enstrophy",
              "palinstr.", "max|w|");
  tsem::obs::BenchReport report("fig3_shear_layer");
  report.meta()["figure"] = "Fig 3";
  report.meta()["dt"] = 0.002;
  report.meta()["t_final"] = tfinal;
  report.meta()["quick"] = quick;
  tsem::Timer timer;
  for (const auto& c : cases) {
    tsem::Timer case_timer;
    const auto mres = run_case(c, tfinal, !quick);
    tsem::obs::Json& jc = report.add_case(c.tag);
    jc["rho"] = c.rho;
    jc["Re"] = c.re;
    jc["k1d"] = c.k1d;
    jc["order"] = c.order;
    jc["filter_alpha"] = c.alpha;
    jc["stable"] = mres.stable;
    jc["t_end"] = mres.t_end;
    jc["kinetic_energy"] = mres.ke;
    jc["enstrophy"] = mres.enstrophy;
    jc["palinstrophy"] = mres.palinstrophy;
    jc["max_vorticity"] = mres.max_w;
    jc["wall_seconds"] = case_timer.seconds();
    if (mres.stable)
      std::printf("%4s %6.0f %8.0f %4d %3d %6.2f | %8s %10.5f %12.2f %12.4g "
                  "%10.2f\n",
                  c.tag, c.rho, c.re, c.k1d, c.order, c.alpha, "yes", mres.ke,
                  mres.enstrophy, mres.palinstrophy, mres.max_w);
    else
      std::printf("%4s %6.0f %8.0f %4d %3d %6.2f | %8s (diverged at t "
                  "= %.3f)\n",
                  c.tag, c.rho, c.re, c.k1d, c.order, c.alpha, "BLOW-UP",
                  mres.t_end);
    std::fflush(stdout);
  }
  const double wall = timer.seconds();
  std::printf("# wall time: %.1fs\n", wall);
  report.meta()["wall_seconds"] = wall;
  report.write();
  return 0;
}
