// Fig 6: coarse-grid solve time versus processor count on the simulated
// ASCI-Red for the 63x63 (n = 3969) and 127x127 (n = 16129) five-point
// Poisson problems.
//
// Methods (all numerically real; see solver/coarse.hpp):
//   XXT              — sparse A0-conjugate factorization; solve = local
//                      sparse mat-vecs + measured fan-in/fan-out tree.
//   redundant LU     — allgather b, every rank back-solves a banded
//                      Cholesky redundantly.
//   distributed Ainv — rows of A^{-1} distributed; allgather b + local
//                      dense row-block product.
//   latency*2logP    — the paper's lower-bound curve.
//
// Two tiers in the BENCH JSON (DESIGN.md measured vs modeled):
//   "measured"     — P <= pmax (default 256): the XXT factorization is
//                    actually computed at every P, its solve verified
//                    against banded LU, and the per-level fan-in words
//                    and per-rank nonzero loads taken from the factor's
//                    real column supports.  Only the clock (alpha, beta,
//                    flop rate) is modeled.
//   "extrapolated" — P > pmax up to 2048: the XXT schedule follows the
//                    analytic 2D separator bound (3 n^(1/2) words per
//                    level; bench/hairpin_model.hpp).  The LU and A^{-1}
//                    baselines are analytic at every P.
//   "executed"     — P = 2..pexec REAL forked rank processes (mp/): the
//                    same per-P factor's fan-in/fan-out tree walk runs
//                    over shared-memory channels, its result checked
//                    BITWISE against the single-process reference walk
//                    and within tolerance of banded LU, with the
//                    measured coarse-phase wall time in the JSON.
//
// Expected shape, as in the paper: XXT keeps improving to P ~ 16
// (n = 3969) / P ~ 256 (n = 16129) and then tracks the latency curve,
// while both baselines flatten much earlier at a far higher time.
//
// usage: bench_fig6_coarse [--pmax P] [--pexec P] [--sizes nx1,nx2,...]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "bench/hairpin_model.hpp"
#include "common/timer.hpp"
#include "fem/fem.hpp"
#include "mp/dist_xxt.hpp"
#include "mp/runtime.hpp"
#include "obs/bench_report.hpp"
#include "sim/machine.hpp"
#include "solver/coarse.hpp"
#include "solver/xxt.hpp"

namespace {

using tsem::MachineParams;

tsem::obs::BenchReport g_report("fig6_coarse");

int log2i(int p) {
  int l = 0;
  while ((1 << l) < p) ++l;
  return l;
}

// Executed-tier XXT at P real forked ranks: run the distributed tree
// walk `reps` times over shm channels, verify it bitwise against the
// single-process reference walk and against the banded-LU solution, and
// record the measured coarse-phase wall time.
void run_executed_xxt(const tsem::XxtSolver& xxt, int n, int p,
                      const std::vector<double>& b,
                      const std::vector<double>& lu_ref,
                      tsem::obs::Json& c) {
  using tsem::mp::Phase;
  tsem::mp::DistXxtPlan plan = tsem::mp::build_dist_xxt(xxt, p);
  std::vector<double> ref(static_cast<std::size_t>(n));
  tsem::mp::dist_xxt_reference(plan, b.data(), ref.data());

  tsem::mp::MpOptions mopt;
  mopt.nranks = p;
  tsem::mp::MpSession session(mopt);
  plan.attach_channels(session);
  double* b_sh = session.shared_doubles(static_cast<std::size_t>(n));
  double* out_sh = session.shared_doubles(static_cast<std::size_t>(n));
  std::memcpy(b_sh, b.data(), b.size() * sizeof(double));

  const int reps = 5;
  std::string err;
  const bool ok = session.run(
      [&](tsem::mp::MpRank& ctx) {
        tsem::mp::XxtScratch scratch;
        for (int it = 0; it < reps; ++it) {
          tsem::Timer t;
          if (!tsem::mp::dist_xxt_solve(plan, ctx.rank(), ctx, b_sh, out_sh,
                                        scratch))
            return 1;
          ctx.phase_add(Phase::Coarse, t.seconds());
          if (!ctx.barrier()) return 1;  // keep reps in lockstep
        }
        return 0;
      },
      &err);
  if (!ok) std::printf("# WARNING: executed xxt P=%d failed: %s\n", p,
                       err.c_str());
  const bool bitwise =
      ok && std::memcmp(ref.data(), out_sh,
                        static_cast<std::size_t>(n) * sizeof(double)) == 0;
  double lu_err = 0.0;
  if (ok)
    for (int i = 0; i < n; ++i)
      lu_err = std::max(lu_err, std::fabs(lu_ref[static_cast<std::size_t>(i)] -
                                          out_sh[i]));
  const double sec = session.phase_max_seconds(Phase::Coarse) / reps;
  std::printf("# executed P=%d: coarse solve %.3es/solve, bitwise=%d, "
              "max |exec - bandedLU| = %.2e\n", p, sec, bitwise ? 1 : 0,
              lu_err);
  c["tier"] = "executed";
  c["n"] = n;
  c["nodes"] = p;
  c["reps"] = reps;
  c["exec_seconds_coarse"] = sec;
  c["bitwise_vs_reference"] = bitwise;
  c["xxt_err_vs_lu"] = lu_err;
  tsem::obs::Json words = tsem::obs::Json::array();
  for (auto w : plan.level_max_words) words.push_back(w);
  c["xxt_level_words_executed"] = words;
}

void run_size(int nx, const MachineParams& mach, bool verify_inverse,
              int pmax, int pexec) {
  const int n = nx * nx;
  const auto a = tsem::poisson5(nx, nx);
  std::vector<double> x(n), y(n), z;
  for (int j = 0; j < nx; ++j)
    for (int i = 0; i < nx; ++i) {
      x[j * nx + i] = i;
      y[j * nx + i] = j;
    }

  // ---- numeric cross-validation of the three backends ----
  tsem::RedundantLuCoarse lu(a);
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-1, 1);
  std::vector<double> b(n), s1(n), s2(n);
  for (auto& v : b) v = dist(rng);
  lu.solve(b.data(), s1.data());
  {
    const auto nd = tsem::nested_dissection(a, x, y, z, 4);
    tsem::XxtSolver xxt(a, nd);
    xxt.solve(b.data(), s2.data());
    double err = 0.0;
    for (int i = 0; i < n; ++i) err = std::max(err, std::fabs(s1[i] - s2[i]));
    std::printf("# n=%d: max |xxt - bandedLU| = %.2e\n", n, err);
  }
  if (verify_inverse) {
    tsem::DistributedInvCoarse inv(a);
    inv.solve(b.data(), s2.data());
    double err = 0.0;
    for (int i = 0; i < n; ++i) err = std::max(err, std::fabs(s1[i] - s2[i]));
    std::printf("# n=%d: max |Ainv - bandedLU| = %.2e\n", n, err);
  } else {
    std::printf("# n=%d: distributed-A^{-1} numerics verified at n=3969; "
                "timing modeled here (O(n^2) rows)\n", n);
  }

  std::printf("#\n# n = %d coarse-grid solve time (s) on %s "
              "(measured to P=%d, extrapolated beyond)\n", n, mach.name,
              pmax);
  std::printf("%6s %12s %12s %12s %12s\n", "P", "XXT", "redundantLU",
              "distribAinv", "latency2logP");

  const double lu_flops = lu.solve_flops();
  for (int p = 1; p <= 2048; p *= 2) {
    const bool measured = p <= pmax;
    const int lev = log2i(p);
    double t_xxt = 0.0;
    double err = 0.0;
    std::unique_ptr<tsem::XxtSolver> xxt;
    if (measured) {
      // XXT at this processor count: 2^log2(P) leaf subdomains, really
      // factored; correctness checked at every P.
      const auto nd = tsem::nested_dissection(a, x, y, z, lev);
      xxt = std::make_unique<tsem::XxtSolver>(a, nd);
      xxt->solve(b.data(), s2.data());
      for (int i = 0; i < n; ++i)
        err = std::max(err, std::fabs(s1[i] - s2[i]));
      if (err > 1e-6)
        std::printf("# WARNING: xxt mismatch %g at P=%d\n", err, p);
      t_xxt =
          mach.compute_time(4.0 * static_cast<double>(xxt->max_leaf_nnz())) +
          tsem::tree_fan_time(mach, xxt->level_msg_words().data(),
                              xxt->nlevels());
    } else {
      t_xxt = tsem::hairpin::analytic_coarse_time(n, 2, mach, p);
    }
    const double t_lu =
        tsem::allgather_time(mach, p, n) + mach.compute_time(lu_flops);
    const double t_inv = tsem::allgather_time(mach, p, n) +
                         mach.compute_time(2.0 * n * (static_cast<double>(n) / p));
    const double t_lat = tsem::latency_bound(mach, p);
    std::printf("%6d %12.3e %12.3e %12.3e %12.3e\n", p, t_xxt, t_lu, t_inv,
                t_lat);
    tsem::obs::Json& c =
        g_report.add_case("n" + std::to_string(n) + "/P" + std::to_string(p));
    c["tier"] = measured ? "measured" : "extrapolated";
    c["n"] = n;
    c["nodes"] = p;
    c["sim_seconds_xxt"] = t_xxt;
    c["sim_seconds_redundant_lu"] = t_lu;
    c["sim_seconds_distrib_ainv"] = t_inv;
    c["sim_seconds_latency_bound"] = t_lat;
    if (measured) {
      c["xxt_nnz"] = xxt->nnz();
      c["xxt_msg_words"] = xxt->total_msg_words();
      c["xxt_max_leaf_nnz"] = xxt->max_leaf_nnz();
      c["xxt_err_vs_lu"] = err;
      tsem::obs::Json words = tsem::obs::Json::array();
      for (auto w : xxt->level_msg_words()) words.push_back(w);
      c["xxt_level_words"] = words;
    }
    if (measured && p >= 2 && p <= pexec) {
      tsem::obs::Json& ec = g_report.add_case(
          "n" + std::to_string(n) + "/P" + std::to_string(p) + "/executed");
      run_executed_xxt(*xxt, n, p, b, s1, ec);
    }
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  int pmax = 256;
  int pexec = 4;
  std::vector<int> sizes = {63, 127};
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--pmax")) {
      pmax = std::atoi(next("--pmax"));
    } else if (!std::strcmp(argv[i], "--pexec")) {
      pexec = std::atoi(next("--pexec"));
    } else if (!std::strcmp(argv[i], "--sizes")) {
      sizes.clear();
      for (char* tok = std::strtok(const_cast<char*>(next("--sizes")), ",");
           tok; tok = std::strtok(nullptr, ","))
        sizes.push_back(std::atoi(tok));
    } else {
      std::fprintf(stderr, "unknown arg %s\n", argv[i]);
      std::exit(2);
    }
  }

  const auto mach = MachineParams::asci_red(false, false);
  std::printf("# Fig 6 reproduction: coarse-grid solvers on simulated "
              "ASCI-Red (alpha=%.0fus, %g MB/s, %g MF/s)\n",
              mach.alpha * 1e6, 8.0 / mach.beta / 1e6, mach.flop_rate / 1e6);
  g_report.meta()["figure"] = "Fig 6";
  g_report.meta()["machine"] = mach.name;
  g_report.meta()["pmax_measured"] = pmax;
  if (pexec > pmax) pexec = pmax;
  g_report.meta()["pexec"] = pexec;
  tsem::Timer t;
  for (std::size_t i = 0; i < sizes.size(); ++i)
    run_size(sizes[i], mach, i == 0, pmax, pexec);
  const double wall = t.seconds();
  std::printf("# total bench wall time: %.1fs\n", wall);
  g_report.meta()["wall_seconds"] = wall;
  g_report.write();
  return 0;
}
