// Operator throughput sweep: per-kernel GF/s of every OpenMP-parallel
// element-loop hot path (stiffness, gradient, fused convection, filter,
// dealiased convection, Schwarz apply) across thread counts.
//
// This is the scaling companion to bench_table3_mxm: where Table 3
// measures the serial mxm kernels underneath, this bench measures the
// element loops above them, and the t4/t1 speedup column is the direct
// check on the workspace-arena parallelization (ISSUE PR 3).
//
// Output: BENCH_operator_throughput.json (terasem-bench-1), one case per
// kernel x thread count named "<kernel>/t<threads>" with wall_seconds,
// reps, gflops and speedup_vs_1t.
//
// Usage: bench_operator_throughput [--nx N] [--order P] [--reps R]
//                                  [--threads 1,2,4]
// Default: 8x8x8 box (512 elements), order 7, reps 5, threads 1,2,4.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "common/timer.hpp"
#include "core/dealias.hpp"
#include "core/flops.hpp"
#include "core/operators.hpp"
#include "core/pressure.hpp"
#include "core/space.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "obs/bench_report.hpp"
#include "poly/filter.hpp"
#include "solver/precision.hpp"
#include "solver/schwarz.hpp"
#include "tensor/kernels_simd.hpp"
#include "tensor/mxm.hpp"

namespace {

using tsem::Space;
using tsem::TensorWork;

struct Config {
  int nx = 8;
  int order = 7;
  int reps = 5;
  std::vector<int> threads = {1, 2, 4};
};

Config parse_args(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--nx")) {
      cfg.nx = std::atoi(next("--nx"));
    } else if (!std::strcmp(argv[i], "--order")) {
      cfg.order = std::atoi(next("--order"));
    } else if (!std::strcmp(argv[i], "--reps")) {
      cfg.reps = std::atoi(next("--reps"));
    } else if (!std::strcmp(argv[i], "--threads")) {
      cfg.threads.clear();
      for (const char* tok = std::strtok(next("--threads"), ","); tok;
           tok = std::strtok(nullptr, ","))
        cfg.threads.push_back(std::atoi(tok));
    } else {
      std::fprintf(stderr, "unknown arg %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (cfg.nx < 1 || cfg.order < 3 || cfg.reps < 1 || cfg.threads.empty()) {
    std::fprintf(stderr, "bad configuration\n");
    std::exit(2);
  }
  return cfg;
}

void set_threads(int nt) {
#ifdef _OPENMP
  omp_set_num_threads(nt);
#else
  (void)nt;
#endif
}

struct Kernel {
  const char* name;
  double flops_per_rep;  // modeled, for the GF/s column
  std::function<void()> run;
};

}  // namespace

int main(int argc, char** argv) {
  const Config cfg = parse_args(argc, argv);
  tsem::mxm_autotune_init();  // tune before timing so setup cost is excluded

  auto spec = tsem::box_spec_3d(tsem::linspace(0, 1, cfg.nx),
                                tsem::linspace(0, 1, cfg.nx),
                                tsem::linspace(0, 1, cfg.nx));
  Space s(tsem::build_mesh(spec, cfg.order));
  const auto& m = s.mesh();
  const std::size_t nl = s.nlocal();
  const int n1 = m.n1d();

  std::vector<double> u(nl), v0(nl), v1(nl), v2(nl);
  for (std::size_t i = 0; i < nl; ++i) {
    u[i] = 0.3 * m.x[i] + m.y[i] * m.z[i];
    v0[i] = 1.0 + 0.1 * m.x[i];
    v1[i] = 0.5 - 0.2 * m.y[i];
    v2[i] = 0.25 * m.z[i];
  }
  const double* vel[3] = {v0.data(), v1.data(), v2.data()};
  std::vector<double> out(nl), gx(nl), gy(nl), gz(nl), filt(nl);
  double* grad[3] = {gx.data(), gy.data(), gz.data()};
  const auto fmat = tsem::filter_matrix(m.order, 0.1);

  tsem::DealiasedConvection dc(m);
  tsem::PressureSystem psys(s, s.make_mask(0x3Fu));
  tsem::SchwarzPrecond schwarz(psys, tsem::SchwarzOptions{});
  const std::size_t np = psys.nloc();
  std::vector<double> pr(np), pz(np);
  for (std::size_t i = 0; i < np; ++i)
    pr[i] = 0.1 + 0.9 * static_cast<double>(i % 17) / 17.0;

  TensorWork work;
  const double ta = tsem::tensor_apply_flops(n1, n1, m.dim) * m.nelem;
  const double pointwise = static_cast<double>(nl);
  const Kernel kernels[] = {
      {"stiffness", tsem::stiffness_flops(m),
       [&] { tsem::apply_stiffness_local(m, u.data(), out.data(), work); }},
      {"gradient", 3 * ta + 2.0 * m.dim * m.dim * pointwise,
       [&] { tsem::gradient_local(m, u.data(), grad, work); }},
      {"convect", tsem::convection_flops(m),
       [&] { tsem::convect_local(m, vel, u.data(), out.data(), work); }},
      {"filter", 3 * ta,
       [&] {
         std::copy(u.begin(), u.end(), filt.begin());
         tsem::apply_filter_local(m, fmat, filt.data(), work);
       }},
      {"dealias", tsem::convection_flops(m),  // collocation-grid proxy
       [&] { dc.apply(vel, u.data(), out.data(), work); }},
      {"schwarz", schwarz.local_flops_per_apply(),
       [&] { schwarz.apply(pr.data(), pz.data()); }},
  };

  tsem::obs::BenchReport report("operator_throughput");
  report.meta()["nelem"] = m.nelem;
  report.meta()["order"] = cfg.order;
  report.meta()["dim"] = m.dim;
  report.meta()["nl"] = static_cast<std::int64_t>(nl);
  report.meta()["reps"] = cfg.reps;
#ifdef _OPENMP
  report.meta()["omp"] = true;
  report.meta()["omp_max_threads"] = omp_get_max_threads();
#else
  report.meta()["omp"] = false;
  report.meta()["omp_max_threads"] = 1;
#endif
  // SIMD/autotuner provenance: the element loops here all bottom out in
  // the dispatched mxm kernels, so record which variants the tuner
  // installed for this run's operator shapes.
  report.meta()["simd_compiled"] = tsem::simd_compiled();
  report.meta()["simd_available"] = tsem::simd_available();
  report.meta()["isa"] = tsem::simd_isa_name();
  report.meta()["isa_runtime"] = tsem::mxm_isa_runtime_name();
  report.meta()["precision_env"] =
      tsem::precond_precision_name(tsem::precond_precision_from_env());
  report.meta()["mxm_small"] = tsem::mxm_selected_name(n1, n1, n1);
  report.meta()["mxm_long"] = tsem::mxm_selected_name(n1, n1, n1 * n1);
  report.meta()["mxm_bt"] = tsem::mxm_bt_selected_name(n1);
  {
    tsem::obs::Json tj = tsem::obs::Json::array();
    for (int t : cfg.threads) tj.push_back(t);
    report.meta()["threads"] = std::move(tj);
  }

  std::printf("# operator throughput: %d elements, order %d, nl = %zu\n",
              m.nelem, cfg.order, nl);
  std::printf("%-10s %8s %12s %10s %12s\n", "kernel", "threads",
              "wall_s/rep", "GF/s", "speedup_t1");

  std::map<std::string, double> t1_wall;
  for (const Kernel& k : kernels) {
    for (int nt : cfg.threads) {
      set_threads(nt);
      k.run();  // warm: populate per-thread arena slabs, touch caches
      tsem::Timer timer;
      for (int r = 0; r < cfg.reps; ++r) k.run();
      const double wall = timer.seconds() / cfg.reps;
      if (nt == cfg.threads.front()) t1_wall[k.name] = wall;
      const double speedup = t1_wall[k.name] / wall;
      const double gflops = k.flops_per_rep / wall / 1e9;

      tsem::obs::Json& c =
          report.add_case(std::string(k.name) + "/t" + std::to_string(nt));
      c["kernel"] = k.name;
      c["threads"] = nt;
      c["wall_seconds"] = wall;
      c["reps"] = cfg.reps;
      c["gflops"] = gflops;
      c["speedup_vs_1t"] = speedup;
      std::printf("%-10s %8d %12.3e %10.2f %12.2f\n", k.name, nt, wall,
                  gflops, speedup);
    }
  }
  set_threads(cfg.threads.front());
  report.write();
  return 0;
}
