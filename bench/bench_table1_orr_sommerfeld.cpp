// Table 1: spatial and temporal convergence on the Orr-Sommerfeld
// problem, K = 15.
//
// A small-amplitude (1e-5) Tollmien-Schlichting wave is superimposed on
// plane Poiseuille flow at Re = 7500 in a [0, 2pi] x [-1, 1] channel
// (periodic in x, no-slip walls, alpha_wave = 1).  The growth rate of the
// perturbation energy is measured from the nonlinear Navier-Stokes
// solution and compared with linear theory — computed here by our own
// Chebyshev Orr-Sommerfeld solver (DESIGN.md substitution), exactly the
// comparison the paper makes.
//
// Left block: error vs N at dt = 0.003125 for filter strengths
// alpha = 0 and 0.2.  Right block: error vs dt at N = 17 for the 2nd- and
// 3rd-order schemes (the filtered 3rd-order scheme is stable even where
// the unfiltered one fails — the paper's key stabilization result).
//
// usage: bench_table1_orr_sommerfeld [spatial|temporal|all] [--quick]
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"
#include "obs/bench_report.hpp"
#include "osref/orr_sommerfeld.hpp"

namespace {

constexpr double kRe = 7500.0;
constexpr double kAlphaWave = 1.0;
constexpr double kAmp = 1e-5;

struct RunConfig {
  int order = 7;            // polynomial order N
  double dt = 0.003125;
  int torder = 2;
  double filter_alpha = 0.0;
  double t_settle = 2.0;    // discard initial transient
  double t_final = 8.0;     // measure on [t_settle, t_final]
};

// Measured growth rate (of amplitude, = alpha * Im(c)) or NaN on blowup.
double measure_growth(const RunConfig& cfg,
                      const tsem::OrrSommerfeldResult& os) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 2 * M_PI, 5),
                                tsem::linspace(-1, 1, 3));
  spec.periodic_x = true;
  tsem::Space space(tsem::build_mesh(spec, cfg.order));
  const auto& m = space.mesh();

  tsem::NsOptions opt;
  opt.dt = cfg.dt;
  opt.viscosity = 1.0 / kRe;
  opt.torder = cfg.torder;
  opt.filter_alpha = cfg.filter_alpha;
  opt.helm_tol = 1e-12;
  opt.pres_tol = 1e-10;
  opt.proj_len = 20;
  tsem::NavierStokes ns(space, (1u << tsem::kFaceYLo) | (1u << tsem::kFaceYHi),
                        opt);

  // Base flow + TS eigenfunction (normalized to max |v| = 1).
  double vmax = 0.0;
  for (const auto& v : os.v) vmax = std::max(vmax, std::abs(v));
  std::vector<double> ubase(space.nlocal());
  for (std::size_t i = 0; i < space.nlocal(); ++i) {
    const double x = m.x[i], y = m.y[i];
    const auto vh = tsem::chebyshev_eval(os.y, os.v, y) / vmax;
    const auto uh = tsem::chebyshev_eval(os.y, os.u, y) / vmax;
    const std::complex<double> phase(std::cos(kAlphaWave * x),
                                     std::sin(kAlphaWave * x));
    ubase[i] = 1.0 - y * y;
    ns.u(0)[i] = ubase[i] + kAmp * (uh * phase).real();
    ns.u(1)[i] = kAmp * (vh * phase).real();
  }
  const double nu = opt.viscosity;
  ns.set_forcing([nu, &space](const tsem::NavierStokes&, double,
                              const std::array<double*, 3>& f) {
    for (std::size_t i = 0; i < space.nlocal(); ++i) f[0][i] += 2.0 * nu;
  });

  // Perturbation-energy samples for the log-linear fit.
  std::vector<double> ts, loge;
  const int nsteps = static_cast<int>(cfg.t_final / cfg.dt + 0.5);
  const int sample_every = std::max(1, nsteps / 400);
  const std::array<const double*, 3> uref = {ubase.data(), nullptr, nullptr};
  for (int n = 1; n <= nsteps; ++n) {
    ns.step();
    const double e = ns.kinetic_energy(uref);
    if (!std::isfinite(e) || e > 1.0) return std::nan("");  // blow-up
    if (ns.time() >= cfg.t_settle && n % sample_every == 0) {
      ts.push_back(ns.time());
      loge.push_back(std::log(e));
    }
  }
  // Least-squares slope of log E: slope = 2 * growth rate.
  const std::size_t n = ts.size();
  double st = 0, se = 0, stt = 0, ste = 0;
  for (std::size_t i = 0; i < n; ++i) {
    st += ts[i];
    se += loge[i];
    stt += ts[i] * ts[i];
    ste += ts[i] * loge[i];
  }
  const double slope = (n * ste - st * se) / (n * stt - st * st);
  return 0.5 * slope;
}

void print_row_header() {
  std::printf("%6s | %12s %12s\n", "", "alpha=0.0", "alpha=0.2");
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "all";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0)
      quick = true;
    else
      mode = argv[i];
  }

  // Linear theory (our Orr-Sommerfeld substrate).
  const auto os =
      tsem::solve_orr_sommerfeld(kRe, kAlphaWave, 128, {0.25, 0.0025});
  if (!os.converged) {
    std::printf("Orr-Sommerfeld reference failed to converge\n");
    return 1;
  }
  const double wref = os.growth_rate();
  std::printf("# Table 1 reproduction: Orr-Sommerfeld problem, K = 15, "
              "Re = %.0f\n", kRe);
  std::printf("# linear theory: c = %.8f + %.8fi, growth rate = %.8e\n",
              os.c.real(), os.c.imag(), wref);
  if (quick) std::printf("# (--quick: shorter horizon, N <= 11)\n");

  tsem::obs::BenchReport report("table1_orr_sommerfeld");
  report.meta()["table"] = "Table 1";
  report.meta()["Re"] = kRe;
  report.meta()["quick"] = quick;
  report.meta()["growth_rate_ref"] = wref;

  tsem::Timer timer;
  auto rel_err = [&](double w) {
    return std::isnan(w) ? std::nan("") : std::fabs(w - wref) / std::fabs(wref);
  };
  // One report case per run; a blow-up serializes as error null.
  auto run_case = [&](const std::string& name, const RunConfig& cfg) {
    tsem::Timer t;
    const double err = rel_err(measure_growth(cfg, os));
    tsem::obs::Json& c = report.add_case(name);
    c["order"] = cfg.order;
    c["dt"] = cfg.dt;
    c["torder"] = cfg.torder;
    c["filter_alpha"] = cfg.filter_alpha;
    c["rel_error"] = err;
    c["blew_up"] = std::isnan(err);
    c["wall_seconds"] = t.seconds();
    return err;
  };
  auto show = [&](double e) {
    if (std::isnan(e))
      std::printf(" %12s", "blow-up");
    else
      std::printf(" %12.5f", e);
  };

  if (mode == "all" || mode == "spatial") {
    std::printf("#\n# spatial convergence: relative growth-rate error, "
                "dt = 0.003125\n");
    print_row_header();
    std::vector<int> orders = quick ? std::vector<int>{7, 9, 11}
                                    : std::vector<int>{7, 9, 11, 13, 15};
    for (int n : orders) {
      RunConfig cfg;
      cfg.order = n;
      if (quick) {
        cfg.t_settle = 1.0;
        cfg.t_final = 5.0;
      }
      cfg.filter_alpha = 0.0;
      const double e0 =
          run_case("spatial/N" + std::to_string(n) + "/a0.0", cfg);
      cfg.filter_alpha = 0.2;
      const double e2 =
          run_case("spatial/N" + std::to_string(n) + "/a0.2", cfg);
      std::printf("N=%4d |", n);
      show(e0);
      show(e2);
      std::printf("\n");
      std::fflush(stdout);
    }
  }

  if (mode == "all" || mode == "temporal") {
    std::printf("#\n# temporal convergence: N = %d, relative growth-rate "
                "error\n", quick ? 11 : 17);
    std::printf("%9s | %12s %12s | %12s %12s\n", "dt", "2nd a=0.0",
                "2nd a=0.2", "3rd a=0.0", "3rd a=0.2");
    std::vector<double> dts = quick
                                  ? std::vector<double>{0.2, 0.1, 0.05}
                                  : std::vector<double>{0.2, 0.1, 0.05,
                                                        0.025, 0.0125};
    for (double dt : dts) {
      RunConfig cfg;
      cfg.order = quick ? 11 : 17;
      cfg.dt = dt;
      if (quick) {
        cfg.t_settle = 1.0;
        cfg.t_final = 5.0;
      }
      std::printf("%9.5f |", dt);
      for (int torder : {2, 3}) {
        for (double fa : {0.0, 0.2}) {
          cfg.torder = torder;
          cfg.filter_alpha = fa;
          char cname[64];
          std::snprintf(cname, sizeof(cname), "temporal/dt%g/o%d/a%g", dt,
                        torder, fa);
          show(run_case(cname, cfg));
        }
        if (torder == 2) std::printf(" |");
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }
  const double wall = timer.seconds();
  std::printf("# wall time: %.1fs\n", wall);
  report.meta()["wall_seconds"] = wall;
  report.write();
  return 0;
}
