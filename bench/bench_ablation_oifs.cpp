// Ablation: OIFS (characteristics) vs EXT2 (extrapolated) convection
// across convective CFL numbers.
//
// The paper's §4 claim: subintegration of the convection term permits
// dt corresponding to convective CFL 1-5, "significantly reducing the
// number of (expensive) Stokes solves".  This ablation sweeps dt and
// reports, for each treatment, stability, kinetic energy at a fixed
// final time, and wall clock — EXT2 blows up shortly beyond
// its explicit stability limit (CFL ~ 0.6-0.9) while OIFS remains stable
// through CFL ~ 5+ with wall time per simulated second DROPPING as dt
// grows — fewer expensive Stokes solves, traded for cheap RK4 convection
// substeps.
//
// The workload is a (filtered) double shear layer, where the
// convective term is dynamically active.  (On Taylor-Green-like flows
// (u.grad)u is a pure gradient absorbed by the pressure, so explicit
// treatment never destabilizes and the comparison is vacuous.)
//
// Also sweeps the projection window L at fixed dt (the second design
// choice DESIGN.md calls out) and prints total pressure iterations
// (expect a 2.5-5x reduction, consistent with Fig 4).
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/timer.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"
#include "obs/bench_report.hpp"

namespace {

constexpr double kNu = 1e-4;  // Re = 1e4 shear layer

struct Result {
  bool stable = false;
  double ke = 0.0;
  double cfl = 0.0;
  int steps = 0;
  double seconds = 0.0;
};

Result run(tsem::NsOptions::Convection conv, double dt, double tfinal) {
  auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 8),
                                tsem::linspace(0, 1, 8));
  spec.periodic_x = spec.periodic_y = true;
  tsem::Space s(tsem::build_mesh(spec, 8));
  const auto& m = s.mesh();
  tsem::NsOptions opt;
  opt.dt = dt;
  opt.viscosity = kNu;
  opt.convection = conv;
  opt.filter_alpha = 0.3;
  opt.pres_tol = 1e-6;
  opt.proj_len = 8;
  tsem::NavierStokes ns(s, 0u, opt);
  const double rho = 30.0;
  for (std::size_t i = 0; i < s.nlocal(); ++i) {
    const double y = m.y[i];
    ns.u(0)[i] = (y <= 0.5) ? std::tanh(rho * (y - 0.25))
                            : std::tanh(rho * (0.75 - y));
    ns.u(1)[i] = 0.05 * std::sin(2.0 * M_PI * m.x[i]);
  }
  Result r;
  r.steps = static_cast<int>(tfinal / dt + 0.5);
  const double ke0 = ns.kinetic_energy();
  tsem::Timer timer;
  for (int n = 0; n < r.steps; ++n) {
    const auto st = ns.step();
    r.cfl = std::max(r.cfl, st.cfl);
    r.ke = ns.kinetic_energy();
    if (!std::isfinite(r.ke) || r.ke > 4.0 * ke0) {
      r.seconds = timer.seconds();
      return r;  // blow-up
    }
  }
  r.seconds = timer.seconds();
  r.stable = true;
  return r;
}

}  // namespace

int main() {
  const double tfinal = 0.6;
  tsem::obs::BenchReport report("ablation_oifs");
  report.meta()["ablation"] = "OIFS vs EXT2 convection; projection window";
  report.meta()["t_final"] = tfinal;
  std::printf("# Ablation 1: convection treatment vs timestep "
              "(shear layer rho=30 Re=1e4, K=64, N=8, alpha=0.3, "
              "T=%.1f)\n", tfinal);
  std::printf("%8s | %-9s %6s %9s %8s | %-9s %6s %9s %8s\n", "dt", "OIFS",
              "CFL", "KE", "wall(s)", "EXT2", "CFL", "KE", "wall(s)");
  for (double dt : {0.002, 0.004, 0.008, 0.016, 0.032}) {
    const auto o = run(tsem::NsOptions::Convection::Oifs, dt, tfinal);
    const auto e = run(tsem::NsOptions::Convection::Ext, dt, tfinal);
    for (const auto* pr : {&o, &e}) {
      char cname[48];
      std::snprintf(cname, sizeof(cname), "%s/dt%g", pr == &o ? "oifs" : "ext2",
                    dt);
      tsem::obs::Json& c = report.add_case(cname);
      c["convection"] = pr == &o ? "oifs" : "ext2";
      c["dt"] = dt;
      c["stable"] = pr->stable;
      c["cfl"] = pr->cfl;
      c["kinetic_energy"] = pr->ke;
      c["steps"] = pr->steps;
      c["wall_seconds"] = pr->seconds;
    }
    auto fmt = [](const Result& r) {
      if (r.stable)
        std::printf("| %-9s %6.2f %9.5f %8.2f ", "stable", r.cfl, r.ke,
                    r.seconds);
      else
        std::printf("| %-9s %6.2f %9s %8.2f ", "BLOW-UP", r.cfl, "-",
                    r.seconds);
    };
    std::printf("%8.3f ", dt);
    fmt(o);
    fmt(e);
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("#\n# Ablation 2: projection window L at dt = 0.002 "
              "(total pressure iterations over %d shear-layer steps)\n",
              static_cast<int>(tfinal / 0.002 + 0.5) / 2);
  std::printf("%6s %12s\n", "L", "sum p-its");
  const double rho = 30.0;
  for (int l : {0, 2, 5, 10, 20}) {
    auto spec = tsem::box_spec_2d(tsem::linspace(0, 1, 8),
                                  tsem::linspace(0, 1, 8));
    spec.periodic_x = spec.periodic_y = true;
    tsem::Space s(tsem::build_mesh(spec, 8));
    const auto& m = s.mesh();
    tsem::NsOptions opt;
    opt.dt = 0.002;
    opt.viscosity = kNu;
    opt.filter_alpha = 0.3;
    opt.pres_tol = 1e-6;
    opt.proj_len = l;
    tsem::NavierStokes ns(s, 0u, opt);
    for (std::size_t i = 0; i < s.nlocal(); ++i) {
      const double y = m.y[i];
      ns.u(0)[i] = (y <= 0.5) ? std::tanh(rho * (y - 0.25))
                              : std::tanh(rho * (0.75 - y));
      ns.u(1)[i] = 0.05 * std::sin(2.0 * M_PI * m.x[i]);
    }
    int total = 0;
    const int nsteps = static_cast<int>(tfinal / opt.dt + 0.5) / 2;
    tsem::Timer timer;
    for (int n = 0; n < nsteps; ++n) total += ns.step().pressure_iters;
    std::printf("%6d %12d\n", l, total);
    std::fflush(stdout);
    tsem::obs::Json& c = report.add_case("proj/L" + std::to_string(l));
    c["proj_len"] = l;
    c["steps"] = nsteps;
    c["total_pressure_iters"] = total;
    c["wall_seconds"] = timer.seconds();
  }
  report.write();
  return 0;
}
