// Ensemble fleet bench: throughput, setup-cache savings, and
// fault-recovery overhead of the crash-isolated job engine (src/fleet/)
// on a two-shape Taylor-Green sweep.
//
// Runs the same expanded sweep three times under the supervisor:
//
//   1. cold  — setup cache disabled: every worker builds its own mesh,
//              FDM eigenpairs, XXT tree, dealias operators (baseline);
//   2. warm  — cache enabled: one cold build per distinct (mesh, order)
//              shape, every later worker attaches and skips setup;
//   3. fault — cache enabled plus a seeded plan of injected worker
//              kills (and optional preemption).
//
// Every completed job is checked bit-identical (state digest) across
// all three passes — the bench fails loudly if the cache or fault
// recovery ever changes an answer.  The sweep crosses reynolds with TWO
// polynomial orders so the cache handles multiple keys at once.
//
// Output: BENCH_ensemble.json (terasem-bench-1) from the WARM run, one
// case per job; meta carries the fleet policy, cache counters,
// setup_seconds_saved, the cold/faulted wall seconds, and the setup
// speedup (cold aggregate setup wall / warm aggregate setup wall).
//
// Note $TSEM_FLEET_CACHE overrides the cache knob of EVERY pass (the
// fleet-cache CI leg uses that to A/B the whole bench); the intra-run
// meta (setup_seconds_saved, cache_hits) is computed per pass and stays
// meaningful under either setting.
//
// Usage: bench_ensemble [--cases N] [--steps S] [--order P] [--mesh K]
//                       [--concurrency C] [--kills F] [--quantum Q]
//                       [--seed S]
// Default: 8 reynolds cases x 2 orders (P and P-2), 12 steps, order 12,
//          8x8 mesh, concurrency 4, 2 seeded kills, no preemption,
//          seed 1999.  The default shape is large enough that per-job
//          setup is dominated by the cacheable artifacts, so the warm
//          pass demonstrates the >= 2x aggregate setup reduction the
//          cache is built for.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "fleet/spec.hpp"
#include "fleet/supervisor.hpp"
#include "io/binfile.hpp"
#include "obs/json.hpp"
#include "resilience/fault_injector.hpp"

namespace {

int arg_int(int argc, char** argv, const char* flag, int def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  const int cases = arg_int(argc, argv, "--cases", 8);
  const int steps = arg_int(argc, argv, "--steps", 12);
  const int order = arg_int(argc, argv, "--order", 12);
  const int mesh_k = arg_int(argc, argv, "--mesh", 8);
  const int concurrency = arg_int(argc, argv, "--concurrency", 4);
  const int kills = arg_int(argc, argv, "--kills", 2);
  const int quantum = arg_int(argc, argv, "--quantum", 0);
  const int seed = arg_int(argc, argv, "--seed", 1999);

  tsem::fleet::SweepSpec spec;
  spec.name = "ensemble";
  spec.base.mesh_k = mesh_k;
  spec.base.order = order;
  spec.base.dt = 0.01;
  spec.base.steps = steps;
  spec.base.checkpoint_every = steps >= 4 ? steps / 4 : 1;
  spec.base.dealias = true;  // the dealias operators are cached artifacts
  for (int i = 0; i < cases; ++i)
    spec.reynolds.push_back(10.0 + 5.0 * i);
  // Two distinct shapes so the cache juggles multiple keys at once.
  spec.order.push_back(order);
  if (order - 2 >= 3) spec.order.push_back(order - 2);
  const int njobs = cases * static_cast<int>(spec.order.size());
  spec.fleet.concurrency = concurrency;
  spec.fleet.quantum_steps = quantum;

  // Pass 1: cache off — every worker pays full setup (baseline).
  std::string err;
  spec.fleet.cache = false;
  spec.fleet.workdir = "bench_ensemble_work_cold";
  tsem::fleet::FleetReport cold;
  if (!tsem::fleet::run_fleet(spec, &cold, &err)) {
    std::fprintf(stderr, "cold fleet failed: %s\n", err.c_str());
    return 1;
  }

  // Pass 2: cache on — one cold build per shape, the rest attach.
  spec.fleet.cache = true;
  spec.fleet.workdir = "bench_ensemble_work_warm";
  tsem::fleet::FleetReport warm;
  if (!tsem::fleet::run_fleet(spec, &warm, &err)) {
    std::fprintf(stderr, "warm fleet failed: %s\n", err.c_str());
    return 1;
  }

  // Pass 3: cache on + seeded kill plan.
  tsem::FaultInjector inj(static_cast<std::uint32_t>(seed));
  spec.faults = inj.plan_worker_kills(
      njobs, static_cast<std::size_t>(kills < njobs ? kills : njobs - 1),
      steps);
  spec.fleet.workdir = "bench_ensemble_work_faulted";
  tsem::fleet::FleetReport faulted;
  if (!tsem::fleet::run_fleet(spec, &faulted, &err)) {
    std::fprintf(stderr, "faulted fleet failed: %s\n", err.c_str());
    return 1;
  }

  // The cache and the fault ladder must both be invisible in the
  // answers: digest equality across all three passes, job by job.
  std::map<int, std::string> ref;
  for (const auto& out : cold.jobs)
    if (out.completed) ref[out.spec.index] = out.result.digest;
  int mismatches = 0;
  auto check_pass = [&](const tsem::fleet::FleetReport& rep,
                        const char* what) {
    for (const auto& out : rep.jobs) {
      if (!out.completed) {
        std::fprintf(stderr, "[%s] job %d not completed: %s\n", what,
                     out.spec.index, out.failure.c_str());
        ++mismatches;
      } else if (ref.count(out.spec.index) == 0) {
        std::fprintf(stderr, "[%s] job %d has no cold twin\n", what,
                     out.spec.index);
        ++mismatches;
      } else if (ref.at(out.spec.index) != out.result.digest) {
        std::fprintf(stderr, "[%s] job %d digest %s != cold %s\n", what,
                     out.spec.index, out.result.digest.c_str(),
                     ref.at(out.spec.index).c_str());
        ++mismatches;
      }
    }
  };
  check_pass(warm, "warm");
  check_pass(faulted, "faulted");

  const double setup_speedup =
      warm.setup_seconds_total > 0.0
          ? cold.setup_seconds_total / warm.setup_seconds_total
          : 0.0;

  std::printf(
      "ensemble: %d jobs (orders %d/%d, mesh %dx%d, %d steps), "
      "concurrency %d\n",
      njobs, order, order - 2 >= 3 ? order - 2 : order, mesh_k, mesh_k,
      steps, concurrency);
  std::printf("  cold:    %6.2f s  setup %.3f s\n", cold.wall_seconds,
              cold.setup_seconds_total);
  std::printf(
      "  warm:    %6.2f s  setup %.3f s  (speedup %.2fx, saved %.3f s, "
      "hits %ld/%ld)\n",
      warm.wall_seconds, warm.setup_seconds_total, setup_speedup,
      warm.setup_seconds_saved, warm.cache_hits,
      warm.cache_hits + warm.cache_misses);
  std::printf(
      "  faulted: %6.2f s  retries %d  preempts %d  cold_retries %d  "
      "overhead %.2fx\n",
      faulted.wall_seconds, faulted.retries, faulted.preemptions,
      faulted.cold_retries, faulted.wall_seconds / warm.wall_seconds);
  std::printf("  bit-identity: %s\n",
              mismatches == 0
                  ? "all warm+faulted jobs match cold digests"
                  : "MISMATCH");

  tsem::obs::Json doc = warm.to_json("ensemble");
  doc["meta"]["cold_wall_seconds"] = cold.wall_seconds;
  doc["meta"]["cold_setup_seconds_total"] = cold.setup_seconds_total;
  doc["meta"]["setup_speedup"] = setup_speedup;
  doc["meta"]["faulted_wall_seconds"] = faulted.wall_seconds;
  doc["meta"]["faulted_retries"] = faulted.retries;
  doc["meta"]["faulted_cold_retries"] = faulted.cold_retries;
  doc["meta"]["faulted_cache_evictions"] = faulted.cache_evictions;
  doc["meta"]["fault_overhead"] =
      warm.wall_seconds > 0.0 ? faulted.wall_seconds / warm.wall_seconds
                              : 0.0;
  doc["meta"]["digest_mismatches"] = mismatches;
  std::string dir = ".";
  if (const char* env = std::getenv("TSEM_BENCH_DIR"); env && *env) dir = env;
  const std::string path = dir + "/BENCH_ensemble.json";
  const std::string text = doc.dump(2) + "\n";
  if (!tsem::write_file_atomic(path, text.data(), text.size(), &err)) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(), err.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return mismatches == 0 ? 0 : 1;
}
