// Ensemble fleet bench: throughput and fault-recovery overhead of the
// crash-isolated job engine (src/fleet/) on a Taylor-Green Reynolds
// sweep.
//
// Runs the same expanded sweep twice under the supervisor: once clean,
// once with a seeded plan of injected worker kills (plus optional
// preemptive scheduling), and reports wall time, jobs/s, retries, and
// the recovery overhead ratio.  Every completed faulted job is checked
// bit-identical (state digest) against its clean twin — the bench fails
// loudly if fault recovery ever changes an answer.
//
// Output: BENCH_ensemble.json (terasem-bench-1) from the faulted run,
// one case per job; meta carries the fleet policy, the full event log,
// and clean-vs-faulted wall seconds.
//
// Usage: bench_ensemble [--cases N] [--steps S] [--order P] [--mesh K]
//                       [--concurrency C] [--kills F] [--quantum Q]
//                       [--seed S]
// Default: 8 cases, 12 steps, order 6, 2x2 mesh, concurrency 4,
//          2 seeded kills, no preemption, seed 1999.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "fleet/spec.hpp"
#include "fleet/supervisor.hpp"
#include "io/binfile.hpp"
#include "obs/json.hpp"
#include "resilience/fault_injector.hpp"

namespace {

int arg_int(int argc, char** argv, const char* flag, int def) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return std::atoi(argv[i + 1]);
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  const int cases = arg_int(argc, argv, "--cases", 8);
  const int steps = arg_int(argc, argv, "--steps", 12);
  const int order = arg_int(argc, argv, "--order", 6);
  const int mesh_k = arg_int(argc, argv, "--mesh", 2);
  const int concurrency = arg_int(argc, argv, "--concurrency", 4);
  const int kills = arg_int(argc, argv, "--kills", 2);
  const int quantum = arg_int(argc, argv, "--quantum", 0);
  const int seed = arg_int(argc, argv, "--seed", 1999);

  tsem::fleet::SweepSpec spec;
  spec.name = "ensemble";
  spec.base.mesh_k = mesh_k;
  spec.base.order = order;
  spec.base.dt = 0.01;
  spec.base.steps = steps;
  spec.base.checkpoint_every = steps >= 4 ? steps / 4 : 1;
  for (int i = 0; i < cases; ++i)
    spec.reynolds.push_back(10.0 + 5.0 * i);
  spec.fleet.concurrency = concurrency;
  spec.fleet.quantum_steps = quantum;
  spec.fleet.workdir = "bench_ensemble_work";

  // Pass 1: clean fleet (reference wall time and digests).
  std::string err;
  tsem::fleet::FleetReport clean;
  if (!tsem::fleet::run_fleet(spec, &clean, &err)) {
    std::fprintf(stderr, "clean fleet failed: %s\n", err.c_str());
    return 1;
  }

  // Pass 2: same sweep under a seeded kill plan.
  tsem::FaultInjector inj(static_cast<std::uint32_t>(seed));
  spec.faults = inj.plan_worker_kills(
      cases, static_cast<std::size_t>(kills < cases ? kills : cases - 1),
      steps);
  spec.fleet.workdir = "bench_ensemble_work_faulted";
  tsem::fleet::FleetReport faulted;
  if (!tsem::fleet::run_fleet(spec, &faulted, &err)) {
    std::fprintf(stderr, "faulted fleet failed: %s\n", err.c_str());
    return 1;
  }

  // Recovery must be invisible in the answers.
  std::map<int, std::string> ref;
  for (const auto& out : clean.jobs)
    if (out.completed) ref[out.spec.index] = out.result.digest;
  int mismatches = 0;
  for (const auto& out : faulted.jobs) {
    if (!out.completed) {
      std::fprintf(stderr, "job %d not completed: %s\n", out.spec.index,
                   out.failure.c_str());
      ++mismatches;
    } else if (ref.at(out.spec.index) != out.result.digest) {
      std::fprintf(stderr, "job %d digest %s != clean %s\n", out.spec.index,
                   out.result.digest.c_str(),
                   ref.at(out.spec.index).c_str());
      ++mismatches;
    }
  }

  std::printf("ensemble: %d jobs (order %d, %d steps), concurrency %d\n",
              cases, order, steps, concurrency);
  std::printf("  clean:   %6.2f s  (%.2f jobs/s)\n", clean.wall_seconds,
              cases / clean.wall_seconds);
  std::printf(
      "  faulted: %6.2f s  (%.2f jobs/s)  retries %d  preempts %d  "
      "overhead %.2fx\n",
      faulted.wall_seconds, cases / faulted.wall_seconds, faulted.retries,
      faulted.preemptions, faulted.wall_seconds / clean.wall_seconds);
  std::printf("  bit-identity: %s\n",
              mismatches == 0 ? "all faulted jobs match clean digests"
                              : "MISMATCH");

  tsem::obs::Json doc = faulted.to_json("ensemble");
  doc["meta"]["clean_wall_seconds"] = clean.wall_seconds;
  doc["meta"]["fault_overhead"] = faulted.wall_seconds / clean.wall_seconds;
  doc["meta"]["digest_mismatches"] = mismatches;
  std::string dir = ".";
  if (const char* env = std::getenv("TSEM_BENCH_DIR"); env && *env) dir = env;
  const std::string path = dir + "/BENCH_ensemble.json";
  const std::string text = doc.dump(2) + "\n";
  if (!tsem::write_file_atomic(path, text.data(), text.size(), &err)) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(), err.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return mismatches == 0 ? 0 : 1;
}
