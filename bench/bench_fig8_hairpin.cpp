// Fig 8: solution time per step (left) and pressure / x-Helmholtz
// iteration counts (right) for the first 26 timesteps of the hairpin
// vortex run, (K, N) = (8168, 15), P = 2048 ASCI-Red dual-processor.
//
// Two parts (DESIGN.md hardware substitution):
//  1. REAL: a scaled-down 3D boundary-layer-over-bump run (the same
//     physics and solver stack) is integrated for 26 steps; its measured
//     pressure and Helmholtz iteration counts exhibit the paper's
//     signature shape — a sharp drop over the first steps as the
//     projection basis absorbs the impulsive-start transient, settling
//     into a low steady count.
//  2. MODELED: the measured iteration series drives the analytic
//     flop/communication model at the paper's (K, N, P), producing the
//     time-per-step series, the coarse-grid share of the solution time
//     (paper: 4.0% worst case), and the row-distributed-A^{-1}
//     counterfactual (paper: would grow to 15%).
//
// usage: bench_fig8_hairpin [steps] [N] [refine]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/hairpin_model.hpp"
#include "common/timer.hpp"
#include "mesh/build.hpp"
#include "mesh/spec.hpp"
#include "ns/navier_stokes.hpp"
#include "obs/bench_report.hpp"

int main(int argc, char** argv) {
  const int nsteps = argc > 1 ? std::atoi(argv[1]) : 26;
  const int order = argc > 2 ? std::atoi(argv[2]) : 7;
  const int refine = argc > 3 ? std::atoi(argv[3]) : 0;

  auto spec = tsem::bump_channel_spec(
      tsem::linspace(0, 8, 6), tsem::linspace(0, 4, 3),
      {0.0, 0.4, 1.0, 2.0}, 2.5, 2.0, 0.8, 0.3);
  spec.periodic_y = true;
  for (int r = 0; r < refine; ++r) spec = tsem::oct_refine(spec);
  tsem::Space space(tsem::build_mesh(spec, order));
  const auto& m = space.mesh();

  tsem::NsOptions opt;
  opt.dt = 0.015;
  opt.viscosity = 1.0 / 1600.0;
  opt.filter_alpha = 0.1;
  opt.pres_tol = 1e-5;
  opt.proj_len = 20;
  opt.pressure_mean_free = false;
  const std::uint32_t dirichlet = (1u << tsem::kFaceXLo) |
                                  (1u << tsem::kFaceZLo) |
                                  (1u << tsem::kFaceZHi);
  tsem::NavierStokes ns(space, dirichlet, opt);
  const double delta = 1.2 * 0.8;
  for (std::size_t i = 0; i < space.nlocal(); ++i)
    ns.u(0)[i] = std::tanh(1.2 * m.z[i] / delta);

  std::printf("# Fig 8 reproduction (part 1, REAL): impulsively started 3D "
              "bump flow, K=%d N=%d, Re=1600\n", m.nelem, order);
  std::printf("%5s %10s %8s %8s %12s\n", "step", "wall(s)", "p-its",
              "Hx-its", "res0");
  tsem::obs::BenchReport report("fig8_hairpin");
  report.meta()["figure"] = "Fig 8";
  report.meta()["steps"] = nsteps;
  report.meta()["order"] = order;
  report.meta()["nelem"] = m.nelem;
  report.meta()["machine"] = "ASCI-Red-333 dual perf (LogP model, part 2)";

  std::vector<int> pits, hits;
  for (int n = 1; n <= nsteps; ++n) {
    tsem::Timer t;
    const auto st = ns.step();
    pits.push_back(st.pressure_iters);
    hits.push_back(st.helmholtz_iters[0]);
    const double wall = t.seconds();
    std::printf("%5d %10.3f %8d %8d %12.3e\n", n, wall,
                st.pressure_iters, st.helmholtz_iters[0], st.pressure_res0);
    std::fflush(stdout);
    tsem::obs::Json& c = report.add_case("real/step" + std::to_string(n));
    c["step"] = n;
    c["wall_seconds"] = wall;
    c["pressure_iters"] = st.pressure_iters;
    c["helmholtz_iters_x"] = st.helmholtz_iters[0];
    c["pressure_res0"] = st.pressure_res0;
    c["flops"] = st.flops;
  }

  // ---- part 2: paper-scale model ----
  tsem::hairpin::ProblemScale scale;  // K = 8168, N = 15
  const auto mach = tsem::MachineParams::asci_red(true, true);
  const int p = 2048;
  std::printf("#\n# part 2, MODELED: (K,N)=(8168,15), P=2048 dual-processor "
              "perf. (%s)\n", mach.name);
  std::printf("%5s %12s %8s | %10s %10s %10s %10s\n", "step", "time/step(s)",
              "p-its", "compute", "gs", "allreduce", "coarse");
  double total = 0.0, total_coarse = 0.0;
  // Scale the measured iteration series to the paper's settled 30-50
  // range: the mini run settles lower (smaller, better-conditioned
  // system), so shift so the settled tail matches ~40 its.
  double tail = 0.0;
  for (int i = nsteps / 2; i < nsteps; ++i) tail += pits[i];
  tail /= (nsteps - nsteps / 2);
  const double it_scale = 40.0 / (tail > 0 ? tail : 1.0);
  for (int n = 0; n < nsteps; ++n) {
    tsem::hairpin::StepCounts c;
    c.pressure_iters = pits[n] * it_scale;
    c.helmholtz_iters = 3.0 * hits[n];
    const auto t = tsem::hairpin::time_per_step(scale, c, mach, p);
    total += t.total;
    total_coarse += t.coarse;
    std::printf("%5d %12.2f %8.0f | %10.2f %10.2f %10.2f %10.2f\n", n + 1,
                t.total, c.pressure_iters, t.compute, t.gs, t.allreduce,
                t.coarse);
    tsem::obs::Json& jc =
        report.add_case("model/step" + std::to_string(n + 1));
    jc["step"] = n + 1;
    jc["sim_seconds"] = t.total;
    jc["sim_seconds_compute"] = t.compute;
    jc["sim_seconds_gs"] = t.gs;
    jc["sim_seconds_allreduce"] = t.allreduce;
    jc["sim_seconds_coarse"] = t.coarse;
    jc["pressure_iters"] = c.pressure_iters;
    // The canonical impulsive-start transient (shared with Table 4 via
    // hairpin_model.hpp), overlaid for comparison against the measured
    // series driving this tier.
    jc["profile_pressure_iters"] = tsem::hairpin::transient_pressure_iters(n);
  }
  std::printf("#\n# modeled avg time/step over last 5 steps vs paper's "
              "17.5 s at 319 GF:\n");
  double last5 = 0.0;
  for (int n = nsteps - 5; n < nsteps; ++n) {
    tsem::hairpin::StepCounts c;
    c.pressure_iters = pits[n] * it_scale;
    c.helmholtz_iters = 3.0 * hits[n];
    last5 += tsem::hairpin::time_per_step(scale, c, mach, p).total;
  }
  std::printf("#   modeled: %.1f s/step\n", last5 / 5.0);
  std::printf("# coarse-grid share of solution time: %.1f%% (paper: 4.0%% "
              "worst case)\n", 100.0 * total_coarse / total);
  // Counterfactual with the row-distributed inverse coarse solver.
  double total_ainv = 0.0, coarse_ainv = 0.0;
  for (int n = 0; n < nsteps; ++n) {
    tsem::hairpin::StepCounts c;
    c.pressure_iters = pits[n] * it_scale;
    c.helmholtz_iters = 3.0 * hits[n];
    const auto t = tsem::hairpin::time_per_step(scale, c, mach, p, true);
    total_ainv += t.total;
    coarse_ainv += t.coarse;
  }
  std::printf("# with distributed A^{-1} instead: %.1f%% (paper: 15%%)\n",
              100.0 * coarse_ainv / total_ainv);
  report.meta()["coarse_share_pct"] = 100.0 * total_coarse / total;
  report.meta()["coarse_share_ainv_pct"] = 100.0 * coarse_ainv / total_ainv;
  report.write();
  return 0;
}
